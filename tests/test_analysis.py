"""Tests for the static checker (`repro.analysis`).

Every rule gets a positive fixture (a seeded violation it must catch) and
a negative fixture (clean code it must pass); the framework's suppression
semantics and the wire-layout golden regression are covered against the
real committed sources.
"""

from __future__ import annotations

import json
import shutil
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis import ALL_RULES, Project, run_rules
from repro.analysis.rules.accounting import AccountingRule
from repro.analysis.rules.async_safety import AsyncSafetyRule
from repro.analysis.rules.fork_safety import ForkSafetyRule
from repro.analysis.rules.kernel_purity import KernelPurityRule
from repro.analysis.rules.lock_discipline import LockDisciplineRule
from repro.analysis.rules.numeric_safety import NumericSafetyRule
from repro.analysis.rules.shared_state import SharedStateRule
from repro.analysis.rules.span_discipline import SpanDisciplineRule
from repro.analysis.rules.wire_drift import WireDriftRule

REPO = Path(__file__).resolve().parents[1]
SRC = REPO / "src"


def project_from(tmp_path: Path, files: dict[str, str]) -> Project:
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source, encoding="utf-8")
    return Project.load(tmp_path, [tmp_path])


def findings_of(project: Project, rule) -> list:
    return run_rules(project, [rule]).findings


class TestNumericSafety:
    def test_flags_bare_float_equality(self, tmp_path):
        project = project_from(
            tmp_path,
            {"pkg/mod.py": "def f(x):\n    return x == 1.5\n"},
        )
        found = findings_of(project, NumericSafetyRule())
        assert len(found) == 1
        assert found[0].rule == "numeric-safety"
        assert "bare ==" in found[0].message

    def test_flags_float_call_equality(self, tmp_path):
        project = project_from(
            tmp_path,
            {"pkg/mod.py": "def f(a, b):\n    return a.sum() != b.dot(b)\n"},
        )
        assert len(findings_of(project, NumericSafetyRule())) == 1

    def test_flags_inline_tolerance_literal(self, tmp_path):
        project = project_from(
            tmp_path,
            {"pkg/mod.py": "TOL = 1e-9\n"},
        )
        found = findings_of(project, NumericSafetyRule())
        assert len(found) == 1
        assert "tolerance literal" in found[0].message

    def test_clean_module_passes(self, tmp_path):
        project = project_from(
            tmp_path,
            {
                "pkg/mod.py": (
                    "from repro.core.tolerances import MEMBERSHIP_TOL\n\n"
                    "def f(x, y):\n"
                    "    return abs(x - y) <= MEMBERSHIP_TOL and x == 3\n"
                )
            },
        )
        assert findings_of(project, NumericSafetyRule()) == []

    def test_bit_exact_marker_exempts_file(self, tmp_path):
        project = project_from(
            tmp_path,
            {
                "pkg/mod.py": (
                    '"""Backend equivalence (repro: bit-exact).\n"""\n'
                    "def f(a, b):\n    return a.sum() == b.sum()\n"
                )
            },
        )
        assert findings_of(project, NumericSafetyRule()) == []

    def test_tolerances_module_may_define_literals(self, tmp_path):
        project = project_from(
            tmp_path,
            {"repro/core/tolerances.py": "MEMBERSHIP_TOL = 1e-9\n"},
        )
        assert findings_of(project, NumericSafetyRule()) == []


class TestKernelPurity:
    def _kernels(self, tmp_path, body: str) -> Project:
        return project_from(tmp_path, {"repro/core/kernels.py": body})

    def test_signature_drift_flagged(self, tmp_path):
        project = self._kernels(
            tmp_path,
            "import numba\nimport numpy as np\n"
            "def f_numpy(values, offsets):\n    return values\n"
            "@numba.njit(cache=True)\n"
            "def f_numba(values, starts):\n    return values\n",
        )
        found = findings_of(project, KernelPurityRule())
        assert any("signature" in f.message for f in found)

    def test_missing_fallback_flagged(self, tmp_path):
        project = self._kernels(
            tmp_path,
            "import numba\n"
            "@numba.njit(cache=True)\n"
            "def f_numba(values):\n    return values\n",
        )
        found = findings_of(project, KernelPurityRule())
        assert any("fallback" in f.message for f in found)

    def test_missing_njit_decorator_flagged(self, tmp_path):
        project = self._kernels(
            tmp_path,
            "def f_numpy(values):\n    return values\n"
            "def f_numba(values):\n    return values\n",
        )
        found = findings_of(project, KernelPurityRule())
        assert any("@njit" in f.message for f in found)

    @pytest.mark.parametrize(
        "body,needle",
        [
            ("    d = {}\n    return d\n", "dict"),
            ("    g = lambda v: v\n    return g(values)\n", "lambda"),
            ("    try:\n        return values\n    except Exception:\n"
             "        return values\n", "try/except"),
            ("    return GLOBAL_TABLE[0]\n", "free name"),
        ],
    )
    def test_nopython_violations_flagged(self, tmp_path, body, needle):
        project = self._kernels(
            tmp_path,
            "import numba\nimport numpy as np\n"
            "def f_numpy(values):\n    return values\n"
            "@numba.njit(cache=True)\n"
            f"def f_numba(values):\n{body}",
        )
        found = findings_of(project, KernelPurityRule())
        assert any(needle in f.message for f in found), found

    def test_caller_reinlining_reduceat_flagged(self, tmp_path):
        project = project_from(
            tmp_path,
            {
                "repro/core/phase2_fp.py": (
                    "import numpy as np\n"
                    "def f(v, o):\n    return np.maximum.reduceat(v, o)\n"
                )
            },
        )
        found = findings_of(project, KernelPurityRule())
        assert any("reduceat" in f.message for f in found)
        assert any("import" in f.message for f in found)

    def test_real_kernels_module_is_clean(self):
        project = Project.load(REPO, [SRC / "repro" / "core"])
        project.modules = {
            k: v
            for k, v in project.modules.items()
            if k.endswith(("kernels.py", "region_index.py", "phase2_fp.py"))
        }
        assert findings_of(project, KernelPurityRule()) == []


class TestWireDrift:
    WIRE_FILES = (
        "src/repro/cluster/wire.py",
        "src/repro/index/serde.py",
        "src/repro/geometry/polytope.py",
    )

    def _copy_tree(self, tmp_path: Path) -> Path:
        for rel in self.WIRE_FILES:
            dst = tmp_path / rel.removeprefix("src/")
            dst.parent.mkdir(parents=True, exist_ok=True)
            shutil.copy(REPO / rel, dst)
        return tmp_path

    def test_committed_golden_matches_committed_sources(self):
        project = Project.load(REPO, [SRC / "repro"])
        assert findings_of(project, WireDriftRule()) == []

    def test_layout_change_without_version_bump_fails(self, tmp_path):
        root = self._copy_tree(tmp_path)
        wire_copy = root / "repro/cluster/wire.py"
        source = wire_copy.read_text()
        assert '"<qqqqqd"' in source
        # Widen the update record on BOTH sides: symmetric, still drifted.
        wire_copy.write_text(source.replace('"<qqqqqd"', '"<qqqqqqd"'))
        project = Project.load(root, [root])
        found = findings_of(project, WireDriftRule())
        assert any(
            "WIRE_VERSION" in f.message and "bump" in f.message
            for f in found
        ), found

    def test_layout_change_with_version_bump_wants_new_golden(self, tmp_path):
        root = self._copy_tree(tmp_path)
        wire_copy = root / "repro/cluster/wire.py"
        source = wire_copy.read_text()
        source = source.replace('"<qqqqqd"', '"<qqqqqqd"')
        source = source.replace("WIRE_VERSION = 1", "WIRE_VERSION = 2")
        wire_copy.write_text(source)
        project = Project.load(root, [root])
        found = findings_of(project, WireDriftRule())
        assert any("--update-golden" in f.message for f in found)

    def test_asymmetric_codec_flagged(self, tmp_path):
        project = project_from(
            tmp_path,
            {
                "repro/cluster/wire.py": (
                    "import struct\n"
                    "WIRE_VERSION = 1\n"
                    "def encode_ping(x):\n"
                    '    return struct.pack("<q", x)\n'
                )
            },
        )
        rule = WireDriftRule(golden_path=tmp_path / "golden.json")
        rule.write_golden(project)
        found = findings_of(project, rule)
        assert any("decode_ping" in f.message for f in found)

    def test_format_disagreement_flagged(self, tmp_path):
        project = project_from(
            tmp_path,
            {
                "repro/cluster/wire.py": (
                    "import struct\n"
                    "WIRE_VERSION = 1\n"
                    "def encode_ping(x):\n"
                    '    return struct.pack("<qq", x, x)\n'
                    "def decode_ping(buf):\n"
                    '    return struct.unpack("<qd", buf)\n'
                )
            },
        )
        rule = WireDriftRule(golden_path=tmp_path / "golden.json")
        rule.write_golden(project)
        found = findings_of(project, rule)
        assert any("disagree" in f.message for f in found)


class TestForkSafety:
    def test_lambda_into_shardspec_flagged(self, tmp_path):
        project = project_from(
            tmp_path,
            {
                "repro/cluster/router.py": (
                    "def build(rows):\n"
                    "    return ShardSpec(shard=0, scorer=lambda w: w,"
                    " points=rows)\n"
                )
            },
        )
        found = findings_of(project, ForkSafetyRule())
        assert any("lambda" in f.message for f in found)

    def test_nested_function_into_shardspec_flagged(self, tmp_path):
        project = project_from(
            tmp_path,
            {
                "anywhere.py": (
                    "def build(rows):\n"
                    "    def scorer(w):\n"
                    "        return w\n"
                    "    return ShardSpec(shard=0, scorer=scorer)\n"
                )
            },
        )
        found = findings_of(project, ForkSafetyRule())
        assert any("pickle" in f.message for f in found)

    def test_module_level_mutable_dict_flagged(self, tmp_path):
        project = project_from(
            tmp_path,
            {"repro/cluster/registry.py": "TABLE = {}\n"},
        )
        found = findings_of(project, ForkSafetyRule())
        assert any("mutable dict" in f.message for f in found)

    def test_module_level_lock_flagged(self, tmp_path):
        project = project_from(
            tmp_path,
            {
                "repro/engine/state.py": (
                    "import threading\n_LOCK = threading.Lock()\n"
                )
            },
        )
        found = findings_of(project, ForkSafetyRule())
        assert any("import time" in f.message for f in found)

    def test_frozen_state_and_out_of_scope_modules_pass(self, tmp_path):
        project = project_from(
            tmp_path,
            {
                # In scope, but immutable / dunder state only.
                "repro/cluster/ok.py": (
                    "from types import MappingProxyType\n"
                    "__all__ = ['A']\n"
                    "A = MappingProxyType({1: 2})\n"
                    "B = frozenset({1})\n"
                ),
                # Mutable, but not a fan-out module.
                "repro/bench/tables.py": "ROWS = []\n",
            },
        )
        assert findings_of(project, ForkSafetyRule()) == []

    def test_real_cluster_tree_is_clean_or_justified(self):
        project = Project.load(REPO, [SRC / "repro" / "cluster"])
        result = run_rules(project, [ForkSafetyRule()])
        assert result.findings == []
        # The two plug-in registries ride on justified suppressions.
        assert len(result.suppressed) == 2


class TestAccounting:
    def test_unreported_dataclass_counter_flagged(self, tmp_path):
        project = project_from(
            tmp_path,
            {
                "pkg/report.py": (
                    "from dataclasses import dataclass\n"
                    "@dataclass\n"
                    "class Report:\n"
                    "    hits: int = 0\n"
                    "    misses: int = 0\n"
                    "    def to_dict(self):\n"
                    "        return {'hits': self.hits}\n"
                )
            },
        )
        found = findings_of(project, AccountingRule())
        assert len(found) == 1 and "misses" in found[0].message

    def test_unreported_init_counter_flagged(self, tmp_path):
        project = project_from(
            tmp_path,
            {
                "pkg/cache.py": (
                    "class Cache:\n"
                    "    def __init__(self):\n"
                    "        self.evictions = 0\n"
                    "        self._tick = 0\n"
                    "    def stats(self):\n"
                    "        return {}\n"
                )
            },
        )
        found = findings_of(project, AccountingRule())
        assert len(found) == 1 and "evictions" in found[0].message

    def test_counter_via_helper_method_passes(self, tmp_path):
        project = project_from(
            tmp_path,
            {
                "pkg/router.py": (
                    "class Router:\n"
                    "    def __init__(self):\n"
                    "        self.fanouts = 0\n"
                    "    def _tier(self):\n"
                    "        return {'fanouts': self.fanouts}\n"
                    "    def stats(self):\n"
                    "        return {**self._tier()}\n"
                )
            },
        )
        assert findings_of(project, AccountingRule()) == []

    def test_counter_via_property_passes(self, tmp_path):
        project = project_from(
            tmp_path,
            {
                "pkg/cache.py": (
                    "class Cache:\n"
                    "    def __init__(self):\n"
                    "        self.lru_evictions = 0\n"
                    "        self.cost_evictions = 0\n"
                    "    @property\n"
                    "    def capacity_evictions(self):\n"
                    "        return self.lru_evictions + self.cost_evictions\n"
                    "    def stats(self):\n"
                    "        return {'capacity': self.capacity_evictions}\n"
                )
            },
        )
        assert findings_of(project, AccountingRule()) == []

    def test_class_without_reporting_surface_ignored(self, tmp_path):
        project = project_from(
            tmp_path,
            {
                "pkg/plain.py": (
                    "class Plain:\n"
                    "    def __init__(self):\n"
                    "        self.count = 0\n"
                )
            },
        )
        assert findings_of(project, AccountingRule()) == []


class TestLockDiscipline:
    def _router(self, serve_body: str, extra: str = "") -> dict[str, str]:
        return {
            "repro/cluster/router.py": (
                "import threading\n"
                "from concurrent.futures import ThreadPoolExecutor\n"
                "\n"
                "\n"
                "class Router:\n"
                f"{extra}"
                "    def __init__(self):\n"
                "        self.hits = 0\n"
                "        self._lock = threading.Lock()\n"
                "        self.pool = ThreadPoolExecutor(2)\n"
                "\n"
                "    def _fan_out(self, xs):\n"
                "        return [self.pool.submit(self._serve, x) for x in xs]\n"
                "\n"
                "    def _serve(self, x):\n"
                f"{serve_body}"
                "        return x\n"
            )
        }

    def test_unguarded_mutation_on_submitted_path_flagged(self, tmp_path):
        project = project_from(
            tmp_path, self._router("        self.hits += 1\n")
        )
        findings = findings_of(project, LockDisciplineRule())
        assert len(findings) == 1
        assert findings[0].rule == "lock-discipline"
        assert "'hits'" in findings[0].message
        assert "_serve" in findings[0].message

    def test_lexically_guarded_mutation_passes(self, tmp_path):
        project = project_from(
            tmp_path,
            self._router(
                "        with self._lock:\n            self.hits += 1\n"
            ),
        )
        assert findings_of(project, LockDisciplineRule()) == []

    def test_caller_held_lock_covers_callee_interprocedurally(self, tmp_path):
        # The mutation sits in a helper with no lock of its own; the only
        # caller holds the lock, so every path into the helper is guarded.
        project = project_from(
            tmp_path,
            {
                "repro/cluster/router.py": (
                    "import threading\n"
                    "\n"
                    "\n"
                    "class Router:\n"
                    "    def __init__(self):\n"
                    "        self.hits = 0\n"
                    "        self._lock = threading.Lock()\n"
                    "\n"
                    "    def _fan_out(self, xs):\n"
                    "        with self._lock:\n"
                    "            self._bump()\n"
                    "\n"
                    "    def _bump(self):\n"
                    "        self.hits += 1\n"
                )
            },
        )
        assert findings_of(project, LockDisciplineRule()) == []

    def test_thread_owned_attribute_marker_exempts(self, tmp_path):
        project = project_from(
            tmp_path,
            self._router(
                "        self.hits += 1\n",
                extra=(
                    "    # repro: thread-owned[hits] -- test fixture: "
                    "counter read only after the pool drains\n"
                ),
            ),
        )
        assert findings_of(project, LockDisciplineRule()) == []

    def test_unjustified_marker_is_a_finding_but_still_owns(self, tmp_path):
        project = project_from(
            tmp_path,
            self._router(
                "        self.hits += 1\n",
                extra="    # repro: thread-owned[hits]\n",
            ),
        )
        findings = findings_of(project, LockDisciplineRule())
        assert len(findings) == 1
        assert "justification" in findings[0].message

    def test_stale_marker_flagged(self, tmp_path):
        project = project_from(
            tmp_path,
            self._router(
                "        pass\n",
                extra=(
                    "    # repro: thread-owned[no_such_attr] -- "
                    "left behind by a refactor\n"
                ),
            ),
        )
        findings = findings_of(project, LockDisciplineRule())
        assert len(findings) == 1
        assert "stale" in findings[0].message

    def test_abba_lock_order_flagged(self, tmp_path):
        project = project_from(
            tmp_path,
            {
                "repro/cluster/pair.py": (
                    "import threading\n"
                    "\n"
                    "\n"
                    "class Pair:\n"
                    "    def __init__(self):\n"
                    "        self.a = threading.Lock()\n"
                    "        self.b = threading.Lock()\n"
                    "\n"
                    "    def one(self):\n"
                    "        with self.a:\n"
                    "            with self.b:\n"
                    "                pass\n"
                    "\n"
                    "    def two(self):\n"
                    "        with self.b:\n"
                    "            with self.a:\n"
                    "                pass\n"
                )
            },
        )
        findings = findings_of(project, LockDisciplineRule())
        assert len(findings) == 1
        assert "ABBA" in findings[0].message
        assert "Pair.a" in findings[0].message
        assert "Pair.b" in findings[0].message

    def test_consistent_lock_order_passes(self, tmp_path):
        project = project_from(
            tmp_path,
            {
                "repro/cluster/pair.py": (
                    "import threading\n"
                    "\n"
                    "\n"
                    "class Pair:\n"
                    "    def __init__(self):\n"
                    "        self.a = threading.Lock()\n"
                    "        self.b = threading.Lock()\n"
                    "\n"
                    "    def one(self):\n"
                    "        with self.a:\n"
                    "            with self.b:\n"
                    "                pass\n"
                    "\n"
                    "    def two(self):\n"
                    "        with self.a:\n"
                    "            with self.b:\n"
                    "                pass\n"
                )
            },
        )
        assert findings_of(project, LockDisciplineRule()) == []

    def test_real_concurrency_surface_is_clean(self):
        project = Project.load(REPO, [SRC / "repro"])
        assert findings_of(project, LockDisciplineRule()) == []


class TestSharedState:
    def test_attr_shared_across_read_and_write_paths_flagged(self, tmp_path):
        project = project_from(
            tmp_path,
            {
                "repro/cluster/shard.py": (
                    "class Shard:\n"
                    "    def __init__(self):\n"
                    "        self.items = []\n"
                    "\n"
                    "    def topk(self, k):\n"
                    "        return self.items[:k]\n"
                    "\n"
                    "    def insert(self, x):\n"
                    "        self.items.append(x)\n"
                )
            },
        )
        findings = findings_of(project, SharedStateRule())
        assert len(findings) == 1
        assert findings[0].rule == "shared-state"
        assert "'items'" in findings[0].message

    def test_common_lock_on_both_sides_passes(self, tmp_path):
        project = project_from(
            tmp_path,
            {
                "repro/cluster/shard.py": (
                    "import threading\n"
                    "\n"
                    "\n"
                    "class Shard:\n"
                    "    def __init__(self):\n"
                    "        self.items = []\n"
                    "        self._lock = threading.Lock()\n"
                    "\n"
                    "    def topk(self, k):\n"
                    "        with self._lock:\n"
                    "            return self.items[:k]\n"
                    "\n"
                    "    def insert(self, x):\n"
                    "        with self._lock:\n"
                    "            self.items.append(x)\n"
                )
            },
        )
        assert findings_of(project, SharedStateRule()) == []

    def test_init_only_attribute_never_fires(self, tmp_path):
        project = project_from(
            tmp_path,
            {
                "repro/cluster/shard.py": (
                    "class Shard:\n"
                    "    def __init__(self):\n"
                    "        self.k = 10\n"
                    "\n"
                    "    def topk(self):\n"
                    "        return self.k\n"
                    "\n"
                    "    def insert(self, x):\n"
                    "        return self.k + x\n"
                )
            },
        )
        assert findings_of(project, SharedStateRule()) == []

    def test_module_global_shared_across_paths_flagged(self, tmp_path):
        project = project_from(
            tmp_path,
            {
                "repro/cluster/registry.py": (
                    "REGISTRY = {}\n"
                    "\n"
                    "\n"
                    "class Shard:\n"
                    "    def topk(self, key):\n"
                    "        return REGISTRY.get(key)\n"
                    "\n"
                    "    def insert(self, key, x):\n"
                    "        REGISTRY[key] = x\n"
                )
            },
        )
        findings = findings_of(project, SharedStateRule())
        assert len(findings) == 1
        assert "'REGISTRY'" in findings[0].message

    def test_thread_owned_class_marker_exempts(self, tmp_path):
        project = project_from(
            tmp_path,
            {
                "repro/cluster/shard.py": (
                    "# repro: thread-owned[Shard] -- test fixture: the "
                    "router serializes every call\n"
                    "class Shard:\n"
                    "    def __init__(self):\n"
                    "        self.items = []\n"
                    "\n"
                    "    def topk(self, k):\n"
                    "        return self.items[:k]\n"
                    "\n"
                    "    def insert(self, x):\n"
                    "        self.items.append(x)\n"
                )
            },
        )
        assert findings_of(project, SharedStateRule()) == []

    def test_real_cluster_state_is_locked_or_owned(self):
        project = Project.load(REPO, [SRC / "repro"])
        assert findings_of(project, SharedStateRule()) == []


class TestSuppressions:
    def test_justified_suppression_suppresses(self, tmp_path):
        project = project_from(
            tmp_path,
            {
                "pkg/mod.py": (
                    "def f(x):\n"
                    "    return x == 0.0  "
                    "# repro: allow[numeric-safety] -- exact zero sentinel\n"
                )
            },
        )
        result = run_rules(project, [NumericSafetyRule()])
        assert result.findings == [] and len(result.suppressed) == 1

    def test_unjustified_suppression_is_a_finding(self, tmp_path):
        project = project_from(
            tmp_path,
            {
                "pkg/mod.py": (
                    "def f(x):\n"
                    "    return x == 0.0  # repro: allow[numeric-safety]\n"
                )
            },
        )
        result = run_rules(project, [NumericSafetyRule()])
        assert [f.rule for f in result.findings] == ["suppression"]
        assert "justification" in result.findings[0].message

    def test_comment_block_suppression_covers_next_code_line(self, tmp_path):
        project = project_from(
            tmp_path,
            {
                "pkg/mod.py": (
                    "def f(x):\n"
                    "    # repro: allow[numeric-safety] -- sentinel check,\n"
                    "    # explained over two comment lines\n"
                    "    return x == 0.0\n"
                )
            },
        )
        result = run_rules(project, [NumericSafetyRule()])
        assert result.findings == [] and len(result.suppressed) == 1

    def test_marker_inside_docstring_is_not_a_suppression(self, tmp_path):
        project = project_from(
            tmp_path,
            {
                "pkg/mod.py": (
                    '"""Docs: write # repro: allow[numeric-safety] -- why."""\n'
                    "def f(x):\n"
                    "    return x == 0.0\n"
                )
            },
        )
        result = run_rules(project, [NumericSafetyRule()], strict=True)
        assert [f.rule for f in result.findings] == ["numeric-safety"]

    def test_strict_flags_stale_suppressions(self, tmp_path):
        project = project_from(
            tmp_path,
            {
                "pkg/mod.py": (
                    "X = 3  # repro: allow[numeric-safety] -- nothing here\n"
                )
            },
        )
        result = run_rules(project, [NumericSafetyRule()], strict=True)
        assert [f.rule for f in result.findings] == ["unused-suppression"]

    def test_parse_error_is_a_finding(self, tmp_path):
        project = project_from(tmp_path, {"pkg/broken.py": "def f(:\n"})
        result = run_rules(project, [NumericSafetyRule()])
        assert [f.rule for f in result.findings] == ["parse-error"]


class TestCLI:
    def _run(self, *args: str):
        return subprocess.run(
            [sys.executable, "-m", "repro.analysis", *args],
            capture_output=True,
            text=True,
            cwd=REPO,
        )

    def test_full_repo_strict_run_is_clean(self):
        proc = self._run("src/repro", "--strict")
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "0 findings" in proc.stdout

    def test_violations_exit_nonzero_with_json(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("TOL = 1e-9\n")
        proc = self._run(str(bad), "--json")
        assert proc.returncode == 1
        payload = json.loads(proc.stdout)
        assert payload["exit_code"] == 1
        assert payload["findings"][0]["rule"] == "numeric-safety"

    def test_select_restricts_rules(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("TOL = 1e-9\n")
        proc = self._run(str(bad), "--select", "accounting")
        assert proc.returncode == 0

    def test_unknown_rule_id_rejected(self):
        proc = self._run("src/repro", "--select", "no-such-rule")
        assert proc.returncode != 0
        assert "unknown rule" in proc.stderr

    def test_github_format_emits_error_annotations(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("TOL = 1e-9\n")
        proc = self._run(str(bad), "--format", "github")
        assert proc.returncode == 1
        line = next(
            ln for ln in proc.stdout.splitlines() if ln.startswith("::error ")
        )
        assert "file=" in line and ",line=1," in line
        assert "repro.analysis[numeric-safety]" in line

    def test_github_format_escapes_newlines(self, tmp_path):
        from io import StringIO

        from repro.analysis.framework import (
            AnalysisResult,
            Finding,
            render_github,
        )

        out = StringIO()
        result = AnalysisResult(
            findings=[Finding("demo", "a.py", 3, "line one\nline two % x")],
            suppressed=[],
            checked_files=1,
            rules_run=["demo"],
        )
        render_github(result, stream=out)
        annotation = out.getvalue().splitlines()[0]
        assert "\n" not in annotation.removeprefix("::error ")
        assert "%0A" in annotation and "%25" in annotation

    def test_json_reports_per_rule_timings(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("TOL = 1e-9\n")
        proc = self._run(str(bad), "--json")
        payload = json.loads(proc.stdout)
        timings = payload["rule_timings_ms"]
        assert set(timings) == {cls.id for cls in ALL_RULES}
        assert all(t >= 0.0 for t in timings.values())

    def test_overlapping_paths_parse_each_file_once(self):
        # src and src/repro overlap; every file must be loaded (and its
        # findings reported) exactly once.
        once = Project.load(REPO, [SRC / "repro"])
        twice = Project.load(REPO, [SRC, SRC / "repro"])
        assert sorted(twice.modules) == sorted(once.modules)

    def test_list_rules_names_all_five(self):
        proc = self._run("--list-rules")
        assert proc.returncode == 0
        for cls in ALL_RULES:
            assert cls.id in proc.stdout


class TestAsyncSafety:
    """Seeded violations and clean fixtures for the ``async-safety`` rule."""

    def test_flags_time_sleep_in_coroutine(self, tmp_path):
        project = project_from(
            tmp_path,
            {
                "pkg/serve/front.py": (
                    "import time\n\n"
                    "async def handler():\n"
                    "    time.sleep(0.1)\n"
                )
            },
        )
        found = findings_of(project, AsyncSafetyRule())
        assert len(found) == 1
        assert "time.sleep" in found[0].message
        assert found[0].line == 4

    def test_flags_raw_lock_acquire(self, tmp_path):
        project = project_from(
            tmp_path,
            {
                "pkg/serve/front.py": (
                    "async def handler(lock):\n"
                    "    lock.acquire()\n"
                    "    try:\n"
                    "        pass\n"
                    "    finally:\n"
                    "        lock.release()\n"
                )
            },
        )
        found = findings_of(project, AsyncSafetyRule())
        assert len(found) == 1
        assert ".acquire()" in found[0].message

    def test_flags_synchronous_engine_call(self, tmp_path):
        project = project_from(
            tmp_path,
            {
                "pkg/serve/front.py": (
                    "async def handler(engine, w, k):\n"
                    "    return engine.topk(w, k)\n"
                )
            },
        )
        found = findings_of(project, AsyncSafetyRule())
        assert len(found) == 1
        assert "executor bridge" in found[0].message

    def test_awaited_counterparts_and_bridge_pass(self, tmp_path):
        # The front door's own shape: awaited async methods named like
        # the engine surface, an awaited asyncio lock acquire, and the
        # engine method crossing run_in_executor as a reference.
        project = project_from(
            tmp_path,
            {
                "pkg/serve/front.py": (
                    "import asyncio\n\n"
                    "async def handler(self, w, k):\n"
                    "    await self.lock.acquire()\n"
                    "    resp = await self.topk(w, k)\n"
                    "    loop = asyncio.get_running_loop()\n"
                    "    return await loop.run_in_executor(\n"
                    "        self.pool, self.engine.topk_batch, [resp]\n"
                    "    )\n"
                )
            },
        )
        assert findings_of(project, AsyncSafetyRule()) == []

    def test_nested_def_and_sync_functions_out_of_scope(self, tmp_path):
        # A nested def runs wherever it is called (here: on the bridge),
        # and sync functions are the bridge itself — neither may fire.
        project = project_from(
            tmp_path,
            {
                "pkg/serve/front.py": (
                    "import time\n\n"
                    "def bridge(engine, reqs):\n"
                    "    return engine.topk_batch(reqs)\n\n"
                    "async def handler(engine, reqs):\n"
                    "    def job():\n"
                    "        time.sleep(0.0)\n"
                    "        return engine.topk_batch(reqs)\n"
                    "    return job\n"
                )
            },
        )
        assert findings_of(project, AsyncSafetyRule()) == []

    def test_ignores_modules_outside_serve(self, tmp_path):
        project = project_from(
            tmp_path,
            {
                "pkg/engine/loop.py": (
                    "import time\n\n"
                    "async def handler(engine, w, k):\n"
                    "    time.sleep(0.1)\n"
                    "    return engine.topk(w, k)\n"
                )
            },
        )
        assert findings_of(project, AsyncSafetyRule()) == []

    def test_committed_serve_package_is_clean(self):
        project = Project.load(REPO, [SRC / "repro" / "serve"])
        assert findings_of(project, AsyncSafetyRule()) == []


class TestSpanDiscipline:
    """Seeded violations and clean fixtures for ``span-discipline``."""

    def test_flags_bare_begin_span(self, tmp_path):
        project = project_from(
            tmp_path,
            {
                "pkg/engine/mod.py": (
                    "from repro import obs\n\n"
                    "def f():\n"
                    "    sp = obs.begin_span('work')\n"
                    "    obs.end_span(sp)\n"
                )
            },
        )
        found = findings_of(project, SpanDisciplineRule())
        assert len(found) == 2
        assert all(f.rule == "span-discipline" for f in found)
        assert "leaks the span" in found[0].message

    def test_flags_span_not_used_as_context_manager(self, tmp_path):
        project = project_from(
            tmp_path,
            {
                "pkg/engine/mod.py": (
                    "from repro import obs\n\n"
                    "def f():\n"
                    "    sp = obs.span('work')\n"
                    "    sp.__enter__()\n"
                )
            },
        )
        found = findings_of(project, SpanDisciplineRule())
        assert len(found) == 1
        assert "context manager" in found[0].message
        assert found[0].line == 4

    def test_flags_aliased_function_import(self, tmp_path):
        project = project_from(
            tmp_path,
            {
                "pkg/engine/mod.py": (
                    "from repro.obs import span as make_span\n\n"
                    "def f():\n"
                    "    handle = make_span('work')\n"
                    "    return handle\n"
                )
            },
        )
        found = findings_of(project, SpanDisciplineRule())
        assert len(found) == 1

    def test_with_and_enter_context_forms_pass(self, tmp_path):
        project = project_from(
            tmp_path,
            {
                "pkg/engine/mod.py": (
                    "import contextlib\n\n"
                    "from repro import obs\n\n"
                    "def f(trace_ctx):\n"
                    "    with obs.span('outer'), obs.trace('root'):\n"
                    "        pass\n"
                    "    with contextlib.ExitStack() as stack:\n"
                    "        stack.enter_context(obs.use_trace(*trace_ctx))\n"
                    "        stack.enter_context(obs.span('inner'))\n"
                    "    obs.record_span('atomic', 0.0, 1.0)\n"
                )
            },
        )
        assert findings_of(project, SpanDisciplineRule()) == []

    def test_obs_package_is_exempt(self, tmp_path):
        project = project_from(
            tmp_path,
            {
                "repro/obs/trace.py": (
                    "def begin_span(name):\n"
                    "    return name\n\n"
                    "def span(name):\n"
                    "    handle = begin_span(name)\n"
                    "    return handle\n"
                )
            },
        )
        assert findings_of(project, SpanDisciplineRule()) == []

    def test_modules_without_obs_imports_skipped(self, tmp_path):
        # `span` from some other library is not the tracer's span.
        project = project_from(
            tmp_path,
            {
                "pkg/mod.py": (
                    "from other.tracing import span\n\n"
                    "def f():\n"
                    "    return span('work')\n"
                )
            },
        )
        assert findings_of(project, SpanDisciplineRule()) == []

    def test_committed_sources_are_clean(self):
        project = Project.load(REPO, [SRC / "repro"])
        assert findings_of(project, SpanDisciplineRule()) == []
