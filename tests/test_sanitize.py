"""Tests for the runtime concurrency sanitizer (`repro.sanitize`).

The primitives (ownership tokens, order-checking locks) are exercised
directly in-process — they work regardless of ``REPRO_SANITIZE``. The
production wiring (decorators arming, a seeded race actually detected,
the sharded tier running clean) needs the flag frozen at import, so
those cases run in subprocesses with ``REPRO_SANITIZE=1``.
"""

from __future__ import annotations

import os
import subprocess
import sys
import threading
from pathlib import Path

import pytest

from repro import sanitize
from repro.sanitize import (
    AccessToken,
    LockOrderViolation,
    OwnershipViolation,
    SanitizedRLock,
    _reset_order_graph,
)

REPO = Path(__file__).resolve().parents[1]


def run_sanitized(script: str) -> subprocess.CompletedProcess:
    """Run ``script`` in a fresh interpreter with the sanitizer armed."""
    env = dict(os.environ)
    env["REPRO_SANITIZE"] = "1"
    env["PYTHONPATH"] = str(REPO / "src")
    return subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True,
        text=True,
        cwd=REPO,
        env=env,
        timeout=180,
    )


class TestAccessToken:
    def test_serialized_cross_thread_accesses_pass(self):
        token = AccessToken("t")
        done = []

        def use():
            with token.access("mutate"):
                done.append(1)

        for _ in range(3):
            t = threading.Thread(target=use)
            t.start()
            t.join()
        with token.access("mutate"):
            done.append(1)
        assert len(done) == 4

    def test_concurrent_reads_pass(self):
        token = AccessToken("t")
        inside = threading.Event()
        release = threading.Event()
        errors: list[BaseException] = []

        def reader():
            try:
                with token.access("read"):
                    inside.set()
                    release.wait(5)
            except BaseException as exc:  # pragma: no cover - fail path
                errors.append(exc)
                inside.set()

        t = threading.Thread(target=reader)
        t.start()
        assert inside.wait(5)
        with token.access("read"):
            pass
        release.set()
        t.join()
        assert errors == []

    @pytest.mark.parametrize("mine,other", [
        ("mutate", "mutate"),
        ("mutate", "read"),
        ("read", "mutate"),
    ])
    def test_overlap_with_a_mutation_raises_with_both_stacks(
        self, mine, other
    ):
        token = AccessToken("cache#1")
        inside = threading.Event()
        release = threading.Event()

        def holder():
            with token.access(other):
                inside.set()
                release.wait(5)

        t = threading.Thread(target=holder)
        t.start()
        assert inside.wait(5)
        try:
            with pytest.raises(OwnershipViolation) as err:
                with token.access(mine):
                    pass
        finally:
            release.set()
            t.join()
        message = str(err.value)
        assert "cache#1" in message
        assert "--- this thread" in message
        assert "--- other thread" in message
        # Both stacks are real tracebacks pointing at this test module.
        assert message.count("test_sanitize.py") >= 2

    def test_same_thread_nesting_is_reentrant(self):
        token = AccessToken("t")
        with token.access("mutate"):
            with token.access("read"):
                with token.access("mutate"):
                    pass


class TestSanitizedRLock:
    def setup_method(self):
        _reset_order_graph()

    def test_inversion_detected_without_a_deadlock(self):
        a, b = SanitizedRLock("A"), SanitizedRLock("B")
        with a:
            with b:
                pass
        with pytest.raises(LockOrderViolation) as err:
            with b:
                with a:
                    pass
        message = str(err.value)
        assert "'A'" in message and "'B'" in message
        assert "--- this acquisition" in message

    def test_consistent_order_passes(self):
        a, b = SanitizedRLock("A"), SanitizedRLock("B")
        for _ in range(3):
            with a:
                with b:
                    pass

    def test_reentrant_acquisition_is_not_an_inversion(self):
        a = SanitizedRLock("A")
        with a:
            with a:
                pass

    def test_order_is_shared_across_instances_of_one_name(self):
        # Two backends' pipe locks share a rank, exactly like the static
        # ABBA check abstracts them.
        a1, a2 = SanitizedRLock("pipe"), SanitizedRLock("pipe")
        serve = SanitizedRLock("serve")
        with serve:
            with a1:
                pass
        with pytest.raises(LockOrderViolation):
            with a2:
                with serve:
                    pass


class TestProductionWiring:
    def test_decorators_are_identity_when_disabled(self):
        # Run in a subprocess with the flag cleared: this test must hold
        # even when the suite itself runs under REPRO_SANITIZE=1.
        env = dict(os.environ)
        env.pop("REPRO_SANITIZE", None)
        env["PYTHONPATH"] = str(REPO / "src")
        proc = subprocess.run(
            [
                sys.executable,
                "-c",
                "import threading\n"
                "from repro import sanitize\n"
                "assert not sanitize.ENABLED\n"
                "def method(self):\n"
                "    return 7\n"
                "assert sanitize.mutates(method) is method\n"
                "assert sanitize.reads(method) is method\n"
                "assert isinstance(sanitize.make_lock('x'),\n"
                "                  type(threading.RLock()))\n"
                "print('IDENTITY-OK')\n",
            ],
            capture_output=True,
            text=True,
            cwd=REPO,
            env=env,
            timeout=180,
        )
        assert proc.returncode == 0, proc.stderr
        assert "IDENTITY-OK" in proc.stdout

    def test_armed_interpreter_instruments_methods(self):
        proc = run_sanitized(
            "from repro import sanitize\n"
            "from repro.core.caching import GIRCache\n"
            "from repro.engine.engine import GIREngine\n"
            "assert sanitize.ENABLED\n"
            "assert hasattr(GIRCache.insert, '__wrapped__')\n"
            "assert hasattr(GIRCache.lookup, '__wrapped__')\n"
            "assert hasattr(GIREngine.topk, '__wrapped__')\n"
            "print('ARMED-OK')\n"
        )
        assert proc.returncode == 0, proc.stderr
        assert "ARMED-OK" in proc.stdout

    def test_seeded_race_is_detected(self):
        # Two threads inside one instrumented structure at once, one of
        # them mutating: the sanitizer must fail fast with both stacks.
        proc = run_sanitized(
            "import threading\n"
            "from repro import sanitize\n"
            "\n"
            "class Box:\n"
            "    @sanitize.mutates\n"
            "    def poke(self, entered, release):\n"
            "        entered.set()\n"
            "        release.wait(5)\n"
            "\n"
            "box = Box()\n"
            "entered, release = threading.Event(), threading.Event()\n"
            "t = threading.Thread(target=box.poke, args=(entered, release))\n"
            "t.start()\n"
            "assert entered.wait(5)\n"
            "try:\n"
            "    box.poke(threading.Event(), threading.Event())\n"
            "    print('RACE-MISSED')\n"
            "except sanitize.OwnershipViolation as exc:\n"
            "    assert '--- other thread' in str(exc)\n"
            "    print('RACE-DETECTED')\n"
            "finally:\n"
            "    release.set()\n"
            "    t.join()\n"
        )
        assert proc.returncode == 0, proc.stderr
        assert "RACE-DETECTED" in proc.stdout
        assert "RACE-MISSED" not in proc.stdout

    def test_serialized_use_of_instrumented_structure_passes(self):
        proc = run_sanitized(
            "import threading\n"
            "from repro import sanitize\n"
            "\n"
            "class Box:\n"
            "    @sanitize.mutates\n"
            "    def poke(self):\n"
            "        return 1\n"
            "\n"
            "box = Box()\n"
            "for _ in range(3):\n"
            "    t = threading.Thread(target=box.poke)\n"
            "    t.start()\n"
            "    t.join()\n"
            "box.poke()\n"
            "print('SERIAL-OK')\n"
        )
        assert proc.returncode == 0, proc.stderr
        assert "SERIAL-OK" in proc.stdout

    def test_sharded_tier_runs_clean_under_the_sanitizer(self):
        # The serve lock serializes the router, so parallel fan-out over
        # instrumented shard engines must produce zero violations — and
        # identical answers to the unsanitized run.
        proc = run_sanitized(
            "from repro.cluster import ShardedGIREngine\n"
            "from repro.data.synthetic import independent\n"
            "from repro.engine import mixed_workload\n"
            "\n"
            "data = independent(300, 3, seed=9)\n"
            "wl = mixed_workload(3, 20, base_n=300, k=5,\n"
            "                    update_fraction=0.3, rng=17)\n"
            "with ShardedGIREngine(data, shards=2, parallel=True) as eng:\n"
            "    report = eng.run(wl)\n"
            "assert len(report.responses) > 0\n"
            "print('CLUSTER-OK', len(report.responses))\n"
        )
        assert proc.returncode == 0, proc.stderr
        assert "CLUSTER-OK" in proc.stdout
