"""Tests for boundary perturbations (Section 3.2).

Crossing a bounding facet must produce exactly the new top-k the
perturbation record predicts — verified against a full scan just outside
each facet.
"""

import numpy as np
import pytest

from repro.core.gir import compute_gir
from repro.core.perturbation import boundary_perturbations
from repro.data.synthetic import independent
from repro.index.bulkload import bulk_load_str
from repro.query.linear_scan import scan_topk
from tests.conftest import random_query


class TestClassification:
    def test_kinds_partition(self, small_ind_4d, rng):
        data, tree = small_ind_4d
        q = random_query(rng, 4)
        gir = compute_gir(tree, data, q, 6)
        perts = boundary_perturbations(gir)
        assert perts, "a bounded GIR must have bounding facets"
        for p in perts:
            assert p.halfspace.kind in ("order", "separation")
            assert len(p.new_order) == 6

    def test_order_facet_swaps_neighbours(self, small_ind_4d, rng):
        data, tree = small_ind_4d
        q = random_query(rng, 4)
        gir = compute_gir(tree, data, q, 6)
        ids = list(gir.topk.ids)
        for p in boundary_perturbations(gir):
            if p.halfspace.kind == "order":
                i = ids.index(p.halfspace.upper)
                expected = ids.copy()
                expected[i], expected[i + 1] = expected[i + 1], expected[i]
                assert list(p.new_order) == expected

    def test_separation_facet_replaces_kth(self, small_ind_4d, rng):
        data, tree = small_ind_4d
        q = random_query(rng, 4)
        gir = compute_gir(tree, data, q, 6)
        for p in boundary_perturbations(gir):
            if p.halfspace.kind == "separation":
                assert p.new_order[:-1] == gir.topk.ids[:-1]
                assert p.new_order[-1] == p.halfspace.lower


class TestPredictionsAreCorrect:
    @pytest.mark.parametrize("seed", [61, 62, 63])
    def test_crossing_produces_predicted_result(self, rng, seed):
        data = independent(500, 2, seed=seed)
        tree = bulk_load_str(data)
        q = random_query(rng, 2)
        k = 5
        gir = compute_gir(tree, data, q, k)
        centre, radius = gir.polytope.chebyshev_center()
        assert radius > 0
        checked = 0
        for pert, (row, hs) in zip(
            boundary_perturbations(gir),
            [rh for rh in gir.halfspace_rows() if gir.polytope.facet_mask()[rh[0]]],
        ):
            a = gir.polytope.A[row]
            b = gir.polytope.b[row]
            # Step from the Chebyshev centre straight through this facet.
            direction = a / np.linalg.norm(a)
            t_hit = (b - a @ centre) / (a @ direction)
            just_outside = centre + direction * t_hit * (1 + 1e-7)
            if (just_outside < 0).any() or (just_outside > 1).any():
                continue
            got = scan_topk(data.points, just_outside, k).ids
            assert got == pert.new_order, pert.description
            checked += 1
        assert checked >= 1
