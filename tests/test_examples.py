"""Smoke tests: every shipped example must run end-to-end.

Examples are executed as subprocesses with a reduced dataset size (they all
accept an optional record-count argument) so the suite stays fast while
still exercising the same code paths a user would.
"""

import subprocess
import sys
from pathlib import Path


EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, arg: str) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name), arg],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    return proc.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py", "2000")
        assert "Top-10 record ids" in out
        assert "volume ratio" in out
        assert "immutable intervals" in out.lower() or "Per-weight" in out

    def test_restaurant_recommender(self):
        out = run_example("restaurant_recommender.py", "4000")
        assert "Top-10 restaurants" in out
        assert "tipping point" in out
        assert "Robustness" in out

    def test_result_caching(self):
        out = run_example("result_caching.py", "3000")
        assert "served from cache" in out
        assert "all exact" in out

    def test_sensitivity_dashboard(self):
        out = run_example("sensitivity_dashboard.py", "3000")
        assert "GIR ratio" in out
        assert "Per-weight immutable ranges" in out

    def test_dynamic_engine(self):
        out = run_example("dynamic_engine.py", "3000")
        assert "GIR-aware invalidation vs flush-on-write" in out
        assert "all exact" in out

    def test_sharded_serving(self):
        out = run_example("sharded_serving.py", "3000")
        assert "4-shard cluster (sequential fan-out)" in out
        assert "4-shard cluster (thread fan-out)" in out
        assert "4-shard cluster (process fan-out)" in out
        assert "process backend" in out
        assert "shard 3" in out
        assert "all exact" in out
        assert "MISMATCH" not in out
