"""Tests for adoption conveniences: CSV loading and result summaries."""

import numpy as np
import pytest

from repro.core.gir import compute_gir
from repro.data.dataset import Dataset
from repro.data.synthetic import independent
from repro.index.bulkload import bulk_load_str
from tests.conftest import random_query


class TestFromCSV:
    def write_csv(self, tmp_path, rows, header="a,b,c\n"):
        path = tmp_path / "data.csv"
        path.write_text(header + "\n".join(",".join(map(str, r)) for r in rows))
        return path

    def test_basic_load(self, tmp_path):
        path = self.write_csv(tmp_path, [[1, 10, 5], [3, 20, 7], [2, 30, 6]])
        ds = Dataset.from_csv(path)
        assert ds.n == 3 and ds.d == 3
        assert ds.points.min() == 0.0 and ds.points.max() == 1.0

    def test_column_selection(self, tmp_path):
        path = self.write_csv(tmp_path, [[1, 10, 5], [3, 20, 7]])
        ds = Dataset.from_csv(path, columns=[0, 2])
        assert ds.d == 2

    def test_no_normalise_requires_unit_cube(self, tmp_path):
        path = self.write_csv(tmp_path, [[0.1, 0.2, 0.3], [0.9, 0.8, 0.7]])
        ds = Dataset.from_csv(path, normalise=False)
        assert np.allclose(ds.points[0], [0.1, 0.2, 0.3])

    def test_missing_values_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\n1,\n2,3\n")
        with pytest.raises(ValueError, match="missing"):
            Dataset.from_csv(path)

    def test_loaded_data_queryable(self, tmp_path, rng):
        rows = rng.random((50, 3)) * 100
        path = self.write_csv(tmp_path, rows.tolist())
        ds = Dataset.from_csv(path)
        tree = bulk_load_str(ds)
        gir = compute_gir(tree, ds, random_query(rng, 3), 5)
        assert gir.contains(gir.weights)


class TestSummary:
    def test_summary_contents(self, rng):
        data = independent(500, 3, seed=44)
        tree = bulk_load_str(data)
        gir = compute_gir(tree, data, random_query(rng, 3), 5)
        text = gir.summary()
        assert "top-5" in text
        assert "FP" in text
        assert "volume ratio" in text
        assert str(gir.stats.phase2_candidates) in text
