"""Ablation tests for FP's tuning knobs (FPOptions).

Every knob must preserve correctness — same GIR as the oracle — while
changing only cost characteristics (I/O, fan size).
"""

import itertools

import numpy as np
import pytest

from repro.baselines.exhaustive import exhaustive_gir
from repro.core.gir import compute_gir
from repro.core.phase2_fp import FPOptions, phase1_vertex_directions
from repro.data.synthetic import independent
from repro.index.bulkload import bulk_load_str
from repro.query.brs import brs_topk
from repro.scoring import polynomial_scoring
from tests.conftest import random_query

ALL_OPTION_COMBOS = [
    FPOptions(use_virtual_seeds=s, prune_dominated_nodes=p, tighten_with_phase1=t)
    for s, p, t in itertools.product([False, True], repeat=3)
]


class TestCorrectnessUnderAllOptions:
    @pytest.mark.parametrize("opts", ALL_OPTION_COMBOS)
    def test_matches_oracle_2d(self, small_ind_2d, rng, opts):
        data, tree = small_ind_2d
        q = random_query(rng, 2)
        gir = compute_gir(tree, data, q, 5, method="fp", fp_options=opts)
        oracle = exhaustive_gir(data, q, 5)
        assert gir.polytope.contains_polytope(oracle.polytope)
        assert oracle.polytope.contains_polytope(gir.polytope)

    @pytest.mark.parametrize("opts", ALL_OPTION_COMBOS)
    def test_matches_oracle_4d(self, small_ind_4d, rng, opts):
        data, tree = small_ind_4d
        q = random_query(rng, 4)
        gir = compute_gir(tree, data, q, 6, method="fp", fp_options=opts)
        oracle = exhaustive_gir(data, q, 6)
        assert gir.volume() == pytest.approx(oracle.volume(), rel=1e-6, abs=1e-15)

    def test_anti_with_tightening(self, small_anti_3d, rng):
        data, tree = small_anti_3d
        opts = FPOptions(tighten_with_phase1=True)
        q = random_query(rng, 3)
        gir = compute_gir(tree, data, q, 8, method="fp", fp_options=opts)
        oracle = exhaustive_gir(data, q, 8)
        assert gir.volume() == pytest.approx(oracle.volume(), rel=1e-6, abs=1e-15)

    def test_nonlinear_with_tightening(self, rng):
        data = independent(600, 4, seed=120)
        tree = bulk_load_str(data)
        scorer = polynomial_scoring([4, 3, 2, 1])
        opts = FPOptions(tighten_with_phase1=True)
        q = random_query(rng, 4)
        gir = compute_gir(tree, data, q, 5, method="fp", scorer=scorer, fp_options=opts)
        oracle = exhaustive_gir(data, q, 5, scorer=scorer)
        assert gir.volume() == pytest.approx(oracle.volume(), rel=1e-6, abs=1e-15)


class TestCostEffects:
    def test_tightening_never_increases_io(self, rng):
        data = independent(6_000, 4, seed=121)
        tree = bulk_load_str(data)
        for _ in range(3):
            q = random_query(rng, 4)
            base = compute_gir(tree, data, q, 15, method="fp")
            tight = compute_gir(
                tree, data, q, 15, method="fp",
                fp_options=FPOptions(tighten_with_phase1=True),
            )
            assert tight.stats.io_pages_phase2 <= base.stats.io_pages_phase2

    def test_dominance_pruning_never_increases_io(self, rng):
        data = independent(6_000, 3, seed=122)
        tree = bulk_load_str(data)
        q = random_query(rng, 3)
        with_dom = compute_gir(tree, data, q, 10, method="fp")
        without = compute_gir(
            tree, data, q, 10, method="fp",
            fp_options=FPOptions(prune_dominated_nodes=False),
        )
        assert with_dom.stats.io_pages_phase2 <= without.stats.io_pages_phase2


class TestPhase1Directions:
    def test_contains_query_region_vertices(self, small_ind_2d, rng):
        data, tree = small_ind_2d
        q = random_query(rng, 2)
        run = brs_topk(tree, data.points, q, 5, metered=False)
        verts = phase1_vertex_directions(run, data.points, 2)
        assert verts is not None
        # The origin is a vertex of the interim cone ∩ box.
        assert (np.linalg.norm(verts, axis=1) < 1e-9).any()

    def test_apex_beats_nonresult_at_interior(self, small_ind_2d, rng):
        """At q itself (inside the interim region) the apex beats all
        non-result records — the tightening criterion is consistent."""
        data, tree = small_ind_2d
        q = random_query(rng, 2)
        run = brs_topk(tree, data.points, q, 5, metered=False)
        pk = run.result.kth_id
        others = [i for i in range(data.n) if i not in run.result.ids]
        assert (data.points[others] @ q <= data.points[pk] @ q + 1e-12).all()
