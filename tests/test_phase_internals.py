"""Tests for Phase-1 construction and FP internals (seeds, 2-d ordering)."""

import numpy as np

from repro.core.phase1 import phase1_halfspaces
from repro.core.phase2_fp import _order_candidates, build_fan, virtual_seeds
from repro.query.brs import brs_topk
from repro.query.linear_scan import scan_topk
from tests.conftest import random_query


class TestPhase1:
    def test_counts_and_kinds(self, rng):
        pts = rng.random((50, 3))
        res = scan_topk(pts, np.array([0.5, 0.3, 0.7]), 6)
        hs = phase1_halfspaces(res, pts)
        assert len(hs) == 5
        assert all(h.kind == "order" for h in hs)

    def test_normals_are_adjacent_differences(self, rng):
        pts = rng.random((50, 2))
        q = np.array([0.4, 0.8])
        res = scan_topk(pts, q, 4)
        hs = phase1_halfspaces(res, pts)
        for i, h in enumerate(hs):
            expected = pts[res.ids[i]] - pts[res.ids[i + 1]]
            assert np.allclose(h.normal, expected)
            assert (h.upper, h.lower) == (res.ids[i], res.ids[i + 1])

    def test_original_query_satisfies_all(self, rng):
        pts = rng.random((80, 4))
        q = random_query(rng, 4)
        res = scan_topk(pts, q, 10)
        for h in phase1_halfspaces(res, pts):
            assert h.satisfied(q)

    def test_k1_empty(self, rng):
        pts = rng.random((20, 2))
        res = scan_topk(pts, np.array([0.5, 0.5]), 1)
        assert phase1_halfspaces(res, pts) == []


class TestVirtualSeeds:
    def test_linear_seeds_are_axis_projections(self):
        apex = np.array([0.6, 0.5, 0.9])
        seeds = virtual_seeds(apex, np.zeros(3))
        assert len(seeds) == 3
        for i, (key, s) in enumerate(seeds):
            assert key == ("virtual", i)
            expected = np.zeros(3)
            expected[i] = apex[i]
            assert np.allclose(s, expected)

    def test_seeds_dominated_by_apex(self):
        apex = np.array([0.6, 0.5])
        for _, s in virtual_seeds(apex, np.zeros(2)):
            assert (apex >= s).all()

    def test_seed_constraints_redundant_in_query_space(self, rng):
        """(apex - seed)·q' >= 0 for every q' in the positive orthant."""
        apex = rng.random(4)
        for _, s in virtual_seeds(apex, np.zeros(4)):
            normal = apex - s
            for _ in range(50):
                q = rng.random(4)
                assert normal @ q >= -1e-12

    def test_gspace_lower_corner(self):
        """Seeds drop to the g-space lower corner, not to zero."""
        apex_g = np.array([1.5, 2.0])
        lower = np.array([1.0, 1.0])  # e.g. exp-transformed space
        seeds = virtual_seeds(apex_g, lower)
        assert np.allclose(seeds[0][1], [1.5, 1.0])
        assert np.allclose(seeds[1][1], [1.0, 2.0])


class TestCandidateOrdering:
    def test_2d_extreme_angles_first(self):
        """The paper's 2-d angular sweep: min/max-angle records lead."""
        apex = np.array([0.9, 0.9])
        q = np.array([1.0, 1.0])
        cands = [
            (0, np.array([0.5, 0.5])),   # middle
            (1, np.array([0.95, 0.2])),  # clockwise extreme
            (2, np.array([0.2, 0.95])),  # anticlockwise extreme
            (3, np.array([0.6, 0.6])),   # middle
        ]
        ordered = _order_candidates(cands, apex, q)
        assert {ordered[0][0], ordered[1][0]} == {1, 2}

    def test_highd_max_per_dimension_first(self):
        apex = np.ones(3)
        q = np.ones(3)
        cands = [
            (0, np.array([0.2, 0.2, 0.2])),
            (1, np.array([0.9, 0.1, 0.1])),  # max x1
            (2, np.array([0.1, 0.9, 0.1])),  # max x2
            (3, np.array([0.1, 0.1, 0.9])),  # max x3
        ]
        ordered = _order_candidates(cands, apex, q)
        assert [k for k, _ in ordered[:3]] == [1, 2, 3]

    def test_small_input_passthrough(self):
        cands = [(0, np.array([0.1, 0.2]))]
        assert _order_candidates(cands, np.ones(2), np.ones(2)) == cands


class TestBuildFan:
    def test_fan_from_brs_leftovers(self, small_ind_4d, rng):
        data, tree = small_ind_4d
        q = random_query(rng, 4)
        run = brs_topk(tree, data.points, q, 10)
        pk = run.result.kth_id
        fan = build_fan(pk, data.points, data.points, run.encountered, q, np.zeros(4))
        assert fan.facet_count() > 0 or fan.degenerate
        # Criticals never include the apex or result records.
        crits = fan.critical_keys()
        assert pk not in crits
        # Virtual keys are tuples; real criticals must be encountered records.
        for c in crits:
            if not isinstance(c, tuple):
                assert c in run.encountered

    def test_dominated_records_excluded(self, rng):
        """Records dominated by the apex never become fan points."""
        pts = np.vstack([
            rng.random((50, 2)) * 0.5,         # all dominated by apex
            np.array([[0.95, 0.2], [0.2, 0.95], [0.99, 0.99]]),
        ])
        apex_id = 52  # (0.99, 0.99) dominates the first 50
        encountered = {i: pts[i] for i in range(52)}
        fan = build_fan(apex_id, pts, pts, encountered, np.ones(2), np.zeros(2))
        crits = {c for c in fan.critical_keys() if not isinstance(c, tuple)}
        assert crits <= {50, 51}
