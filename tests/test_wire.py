"""Tests for the shard wire format (`repro.cluster.wire`).

The wire contract is the distribution boundary of the sharded serving
tier: every payload must round-trip *bit-exactly* (scores, tie sums,
g-images, region rows), frames must be versioned and validated, and
worker exceptions must survive the crossing with enough context to debug.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import wire
from repro.cluster.backends import ShardReply, ShardSpec, ShardUpdate
from repro.geometry.polytope import Polytope
from repro.scoring import LinearScoring, polynomial_scoring


def region(d: int = 3) -> Polytope:
    rng = np.random.default_rng(5)
    return Polytope.from_unit_box(d).with_constraints(rng.normal(size=(4, d)))


class TestPolytopeBytes:
    def test_round_trip_is_bit_exact(self):
        p = region()
        q = Polytope.from_bytes(p.to_bytes())
        assert q.A.tobytes() == p.A.tobytes()
        assert q.b.tobytes() == p.b.tobytes()

    def test_malformed_payloads_rejected(self):
        with pytest.raises(ValueError, match="payload"):
            Polytope.from_bytes(region().to_bytes()[:-8])
        import struct

        with pytest.raises(ValueError, match="malformed"):
            Polytope.from_bytes(struct.pack("<qq", -1, 2))


class TestFraming:
    def test_frame_round_trip(self):
        msg, reader = wire.decode_frame(
            wire.encode_frame(wire.MSG_TOPK, wire.encode_topk(np.ones(3), 5))
        )
        assert msg == wire.MSG_TOPK
        weights, k = wire.decode_topk(reader)
        assert k == 5 and np.array_equal(weights, np.ones(3))

    def test_bad_magic_rejected(self):
        frame = b"NOPE" + wire.encode_frame(wire.MSG_READY)[4:]
        with pytest.raises(wire.WireError, match="magic"):
            wire.decode_frame(frame)

    def test_version_mismatch_rejected(self):
        import struct

        frame = bytearray(wire.encode_frame(wire.MSG_READY))
        struct.pack_into("<H", frame, 4, wire.WIRE_VERSION + 1)
        with pytest.raises(wire.WireError, match="version"):
            wire.decode_frame(bytes(frame))

    def test_unknown_message_type_rejected(self):
        import struct

        frame = bytearray(wire.encode_frame(wire.MSG_READY))
        struct.pack_into("<H", frame, 6, 999)
        with pytest.raises(wire.WireError, match="unknown message"):
            wire.decode_frame(bytes(frame))

    def test_trailing_garbage_rejected(self):
        frame = wire.encode_frame(wire.MSG_DELETE, wire.encode_delete(3) + b"x")
        _msg, reader = wire.decode_frame(frame)
        with pytest.raises(wire.WireError, match="trailing"):
            wire.decode_delete(reader)


class TestPayloads:
    def test_reply_round_trip_is_bit_exact(self):
        rng = np.random.default_rng(7)
        reply = ShardReply(
            ids=(4, 0, 9),
            scores=(0.3 + 1e-16, 0.2, 0.1),
            tie_sums=(1.25, np.pi, 0.75),
            points_g=rng.random((3, 3)),
            region=region(),
            source="completed",
            pages_read=17,
            latency_ms=0.123456789,
            cache_entries=6,
        )
        out = wire.decode_reply(
            wire.decode_frame(
                wire.encode_frame(
                    wire.MSG_REPLY_TOPK, wire.encode_reply(reply)
                )
            )[1]
        )
        assert out.ids == reply.ids
        assert out.scores == reply.scores  # exact float equality
        assert out.tie_sums == reply.tie_sums
        assert out.points_g.tobytes() == reply.points_g.tobytes()
        assert out.region.A.tobytes() == reply.region.A.tobytes()
        assert (out.source, out.pages_read, out.latency_ms) == (
            "completed",
            17,
            reply.latency_ms,
        )
        assert out.cache_entries == 6

    def test_batch_reply_round_trip(self):
        rng = np.random.default_rng(8)
        replies = [
            ShardReply(
                ids=(i,),
                scores=(rng.random(),),
                tie_sums=(rng.random(),),
                points_g=rng.random((1, 2)),
                region=Polytope.from_unit_box(2),
                source="cache",
                pages_read=0,
                latency_ms=0.0,
                cache_entries=1,
            )
            for i in range(3)
        ]
        out = wire.decode_batch_reply(
            wire.decode_frame(
                wire.encode_frame(
                    wire.MSG_REPLY_BATCH, wire.encode_batch_reply(replies)
                )
            )[1]
        )
        assert [r.ids for r in out] == [(0,), (1,), (2,)]
        assert [r.scores for r in out] == [r.scores for r in replies]

    def test_topk_batch_round_trip(self):
        reqs = [(np.array([0.1, 0.9]), 3), (np.array([0.5, 0.5]), 7)]
        out = wire.decode_topk_batch(
            wire.decode_frame(
                wire.encode_frame(
                    wire.MSG_TOPK_BATCH, wire.encode_topk_batch(reqs)
                )
            )[1]
        )
        assert [(w.tolist(), k) for w, k in out] == [
            ([0.1, 0.9], 3),
            ([0.5, 0.5], 7),
        ]

    def test_update_and_stats_round_trip(self):
        update = ShardUpdate(
            rid=12, evicted=3, screened=9, lps=2, latency_ms=1.5,
            cache_entries=4,
        )
        out = wire.decode_update(
            wire.decode_frame(
                wire.encode_frame(
                    wire.MSG_REPLY_UPDATE, wire.encode_update(update)
                )
            )[1]
        )
        assert out == update
        stats = {"page_reads": 42, "cache_entries": 7, "live_records": 100}
        assert (
            wire.decode_stats(
                wire.decode_frame(
                    wire.encode_frame(
                        wire.MSG_REPLY_STATS, wire.encode_stats(stats)
                    )
                )[1]
            )
            == stats
        )

    def test_build_spec_round_trip(self):
        rng = np.random.default_rng(9)
        spec = ShardSpec(
            shard=2,
            name="data[shard2]",
            points=rng.random((20, 4)),
            method="fp",
            cache_capacity=32,
            cache_policy="cost",
            retain_runs=False,
            invalidation="flush",
            page_sleep_ms=0.25,
            scorer=LinearScoring(4),
        )
        out = wire.decode_build(
            wire.decode_frame(
                wire.encode_frame(wire.MSG_BUILD, wire.encode_build(spec))
            )[1]
        )
        assert (out.shard, out.name, out.method) == (2, "data[shard2]", "fp")
        assert (out.cache_capacity, out.retain_runs) == (32, False)
        assert out.cache_policy == "cost"
        assert (out.invalidation, out.page_sleep_ms) == ("flush", 0.25)
        assert out.points.tobytes() == spec.points.tobytes()
        assert isinstance(out.scorer, LinearScoring) and out.scorer.d == 4

    def test_unpicklable_scorer_fails_fast(self):
        # polynomial_scoring builds its components from local lambdas.
        spec = ShardSpec(
            shard=0,
            name="s",
            points=np.zeros((2, 2)),
            method="fp",
            cache_capacity=4,
            cache_policy="lru",
            retain_runs=True,
            invalidation="gir",
            page_sleep_ms=0.0,
            scorer=polynomial_scoring((2.0, 1.0)),
        )
        with pytest.raises(ValueError, match="not picklable"):
            wire.encode_build(spec)

    def test_error_round_trip_carries_context(self):
        try:
            raise KeyError("rid 99 is not live")
        except KeyError as exc:
            failure = wire.decode_error(
                wire.decode_frame(
                    wire.encode_frame(
                        wire.MSG_REPLY_ERROR, wire.encode_error(exc)
                    )
                )[1]
            )
        assert failure.exc_type == "KeyError"
        assert "rid 99" in failure.worker_message
        assert "KeyError" in failure.worker_traceback
        assert "shard worker raised KeyError" in str(failure)


class TestDecodeErrorPaths:
    """Malformed payloads must fail loudly as WireError, never as numpy
    shape errors or silent truncation."""

    def test_truncated_header_rejected(self):
        whole = wire.encode_frame(wire.MSG_READY)
        for cut in range(len(whole)):
            with pytest.raises(wire.WireError, match="truncated"):
                wire.decode_frame(whole[:cut])

    def test_truncated_array_payload_rejected(self):
        payload = wire.encode_topk(np.arange(6, dtype=np.float64), 3)
        frame = wire.encode_frame(wire.MSG_TOPK, payload)
        # Cut inside the array body (after the dtype/ndim/shape preamble).
        cut = frame[: len(frame) - len(payload) + 2 + 8 + 8 * 3]
        msg, reader = wire.decode_frame(cut)
        with pytest.raises(wire.WireError, match="truncated"):
            wire.decode_topk(reader)

    def test_payload_length_mismatch_rejected(self):
        # Extra bytes after a structurally-complete payload: the reader's
        # done() check must refuse, not silently ignore them.
        payload = wire.encode_delete(7) + b"\x00"
        msg, reader = wire.decode_frame(
            wire.encode_frame(wire.MSG_DELETE, payload)
        )
        with pytest.raises(wire.WireError, match="trailing"):
            wire.decode_delete(reader)

    def test_unknown_dtype_tag_rejected(self):
        payload = bytearray(wire.encode_insert(np.ones(3)))
        payload[0] = 99  # dtype tag byte of the embedded array
        msg, reader = wire.decode_frame(
            wire.encode_frame(wire.MSG_INSERT, bytes(payload))
        )
        with pytest.raises(wire.WireError, match="dtype"):
            wire.decode_insert(reader)

    def test_negative_array_dimension_rejected(self):
        import struct

        payload = bytearray(wire.encode_insert(np.ones(3)))
        struct.pack_into("<q", payload, 2, -3)  # first shape slot
        msg, reader = wire.decode_frame(
            wire.encode_frame(wire.MSG_INSERT, bytes(payload))
        )
        with pytest.raises(wire.WireError, match="negative"):
            wire.decode_insert(reader)

    def test_truncated_batch_reply_rejected(self):
        reply = ShardReply(
            ids=(0,),
            scores=(1.0,),
            tie_sums=(1.5,),
            points_g=np.ones((1, 3)),
            region=region(),
            source="computed",
            pages_read=1,
            latency_ms=0.5,
            cache_entries=0,
        )
        payload = wire.encode_batch_reply([reply, reply])
        msg, reader = wire.decode_frame(
            wire.encode_frame(wire.MSG_REPLY_BATCH, payload[: len(payload) // 2])
        )
        with pytest.raises(wire.WireError, match="truncated"):
            wire.decode_batch_reply(reader)
