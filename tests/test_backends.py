"""Tests for the pluggable shard-execution backends (`repro.cluster.backends`).

The headline property extends PR 4's: a process-backed cluster — one
worker process per shard, every request and reply crossing the versioned
wire format — is *byte-identical* to the in-process cluster (exact float
equality, not just tolerance) and observably identical to a single
:class:`GIREngine`, across shard counts × partitioners × per-request /
batched serving × mixed read/write workloads.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import (
    BACKENDS,
    InProcBackend,
    ProcessBackend,
    ShardSpec,
    ShardedGIREngine,
    make_backend,
)
from repro.cluster.wire import WorkerFailure
from repro.data.synthetic import independent
from repro.engine import (
    GIREngine,
    mixed_workload,
    uniform_workload,
    zipf_clustered_workload,
)
from repro.index.bulkload import bulk_load_str
from repro.scoring import LinearScoring

N, D, K = 500, 3, 5


@pytest.fixture(scope="module")
def data():
    return independent(N, D, seed=19)


@pytest.fixture(scope="module")
def spec(data):
    return ShardSpec(
        shard=0,
        name="t[shard0]",
        points=np.asarray(data.points),
        method="fp",
        cache_capacity=16,
        cache_policy="lru",
        retain_runs=True,
        invalidation="gir",
        page_sleep_ms=0.0,
        scorer=LinearScoring(D),
    )


@pytest.fixture(scope="module")
def workloads():
    return {
        "uniform": uniform_workload(D, 15, k=K, rng=201),
        "zipf": zipf_clustered_workload(D, 25, k=K, clusters=4, rng=202),
        "mixed": mixed_workload(
            D, 30, base_n=N, k=K, update_fraction=0.3, rng=203
        ),
    }


def exact_match(report, other) -> None:
    """Bit-exact equality of responses and update accounting — the
    backend-equivalence bar (stricter than the cluster-vs-single-engine
    tolerance)."""
    assert len(report.responses) == len(other.responses)
    for r, s in zip(report.responses, other.responses):
        assert r.ids == s.ids
        assert r.scores == s.scores  # exact float equality
        assert (r.k, r.source, r.pages_read) == (s.k, s.source, s.pages_read)
    assert [
        (u.kind, u.rid, u.evicted, u.prescreen_screened, u.prescreen_lps,
         u.cache_entries)
        for u in report.updates
    ] == [
        (u.kind, u.rid, u.evicted, u.prescreen_screened, u.prescreen_lps,
         u.cache_entries)
        for u in other.updates
    ]


class TestBackendContract:
    """Unit-level checks of the two backends against one shard spec."""

    def test_registry(self, spec):
        assert set(BACKENDS) == {"inproc", "process"}
        with pytest.raises(ValueError, match="unknown shard backend"):
            make_backend("socket", spec)
        with pytest.raises(TypeError, match="registry name"):
            make_backend(42, spec)

    def test_custom_backend_class_accepted(self, spec):
        class MyBackend(InProcBackend):
            name = "custom"

        backend = make_backend(MyBackend, spec)
        assert isinstance(backend, MyBackend)
        assert backend.topk(np.array([0.5, 0.5, 0.5]), 3).ids

    def test_double_build_rejected(self, spec):
        backend = make_backend("inproc", spec)
        with pytest.raises(RuntimeError, match="already built"):
            backend.build(spec)

    def test_process_reply_bit_exact(self, spec):
        a = make_backend("inproc", spec)
        b = make_backend("process", spec)
        try:
            w = np.array([0.6, 0.3, 0.8])
            ra, rb = a.topk(w, K), b.topk(w, K)
            assert ra.ids == rb.ids
            assert ra.scores == rb.scores
            assert ra.tie_sums == rb.tie_sums
            assert ra.points_g.tobytes() == rb.points_g.tobytes()
            assert ra.region.A.tobytes() == rb.region.A.tobytes()
            assert ra.region.b.tobytes() == rb.region.b.tobytes()
            assert (ra.source, ra.pages_read) == (rb.source, rb.pages_read)
            assert a.stats() == b.stats()
        finally:
            a.close()
            b.close()

    def test_worker_error_propagates_and_worker_survives(self, spec):
        backend = make_backend("process", spec)
        try:
            with pytest.raises(WorkerFailure, match="KeyError") as info:
                backend.delete(10_000)
            # A clean failure (the engine never mutated): the worker
            # caught the error and keeps serving.
            assert not info.value.dirty
            assert backend.topk(np.array([0.5, 0.5, 0.5]), 3).ids
        finally:
            backend.close()

    def test_dirty_write_failure_poisons_the_worker(self, spec, monkeypatch):
        """A write failing after the worker's engine mutated marks the
        worker broken: it reports dirty=True and refuses further
        operations (the router fail-stops on its side)."""

        def boom(*args, **kwargs):
            raise RuntimeError("LP solver fell over")

        # Patch before the fork so the worker inherits the broken step.
        monkeypatch.setattr(
            "repro.engine.engine.apply_insert_invalidation", boom
        )
        backend = make_backend("process", spec)
        try:
            with pytest.raises(WorkerFailure, match="insert failed") as info:
                backend.insert(np.array([0.9, 0.9, 0.9]))
            assert info.value.dirty
            with pytest.raises(WorkerFailure, match="refuses further"):
                backend.topk(np.array([0.5, 0.5, 0.5]), 3)
            # Stats stay reachable for post-mortem inspection.
            assert backend.stats()["live_records"] == N + 1
        finally:
            backend.close()

    def test_close_is_idempotent_and_terminal(self, spec):
        backend = make_backend("process", spec)
        assert backend.topk(np.array([0.5, 0.5, 0.5]), 3).ids
        backend.close()
        backend.close()
        with pytest.raises(RuntimeError, match="not running"):
            backend.topk(np.array([0.5, 0.5, 0.5]), 3)


class TestProcessClusterEquivalence:
    """The full matrix: process answers == inproc answers == single engine."""

    @pytest.fixture(scope="class")
    def reference_reports(self, data, workloads):
        reports = {}
        for name, wl in workloads.items():
            engine = GIREngine(data, bulk_load_str(data), cache_capacity=64)
            reports[name] = engine.run(wl)
        return reports

    @pytest.mark.parametrize("workload_name", ["uniform", "zipf", "mixed"])
    @pytest.mark.parametrize("shards", [2, 4])
    @pytest.mark.parametrize("partitioner", ["round_robin", "kd"])
    def test_process_matches_inproc_exactly(
        self, data, workloads, reference_reports, workload_name, shards,
        partitioner,
    ):
        wl = workloads[workload_name]
        with ShardedGIREngine(
            data, shards=shards, partitioner=partitioner, backend="inproc"
        ) as inproc:
            inproc_report = inproc.run(wl)
        with ShardedGIREngine(
            data, shards=shards, partitioner=partitioner, backend="process",
            parallel=True,
        ) as proc:
            proc_report = proc.run(wl)
        exact_match(proc_report, inproc_report)
        # And both observably match the single engine (repo equivalence bar).
        reference = reference_reports[workload_name]
        for r, s in zip(proc_report.responses, reference.responses):
            assert r.ids == s.ids
            np.testing.assert_allclose(r.scores, s.scores, rtol=0, atol=1e-12)

    @pytest.mark.parametrize("workload_name", ["zipf", "mixed"])
    def test_batched_process_matches_inproc_exactly(
        self, data, workloads, workload_name
    ):
        wl = workloads[workload_name]
        with ShardedGIREngine(data, shards=2, backend="inproc") as inproc:
            inproc_report = inproc.run(wl, batch=True)
        with ShardedGIREngine(data, shards=2, backend="process") as proc:
            proc_report = proc.run(wl, batch=True)
        exact_match(proc_report, inproc_report)

    def test_shard_stats_parity_and_sums(self, data, workloads):
        """Per-shard accounting (cache counters, page reads) is identical
        across backends and still sums to cluster totals."""
        wl = workloads["mixed"]
        reports = {}
        for backend in ("inproc", "process"):
            with ShardedGIREngine(
                data, shards=4, backend=backend
            ) as engine:
                reports[backend] = engine.run(wl)
        for backend, report in reports.items():
            shard_pages = sum(s["page_reads"] for s in report.shard_stats)
            assert shard_pages == report.pages_read_total, backend
        strip = lambda s: {  # noqa: E731 - wall-clock field differs
            k: v for k, v in s.items() if k != "latency_ms_total"
        }
        assert [strip(s) for s in reports["inproc"].shard_stats] == [
            strip(s) for s in reports["process"].shard_stats
        ]
        assert (
            reports["inproc"].cluster_stats["cluster_full_hits"]
            == reports["process"].cluster_stats["cluster_full_hits"]
        )

    def test_cluster_stats_name_the_backend(self, data, workloads):
        with ShardedGIREngine(data, shards=2, backend="process") as engine:
            payload = engine.run(workloads["uniform"]).to_dict()
            summary = engine.run(workloads["uniform"]).summary()
        assert payload["cluster"]["backend"] == "process"
        assert payload["cluster"]["mode"] == "sequential"
        assert "process backend" in summary

    def test_shards_property_unavailable_for_process(self, data):
        with ShardedGIREngine(data, shards=2, backend="process") as engine:
            with pytest.raises(RuntimeError, match="not in-process"):
                _ = engine.shards

    def test_context_exit_stops_workers(self, data):
        with ShardedGIREngine(data, shards=2, backend="process") as engine:
            engine.topk(np.array([0.5, 0.4, 0.6]), K)
            procs = [b._proc for b in engine.backends]
            assert all(p is not None and p.is_alive() for p in procs)
        assert all(p is None or not p.is_alive() for p in procs)

    def test_validation_stays_router_side(self, data):
        """Malformed requests are rejected before any frame is sent."""
        with ShardedGIREngine(data, shards=2, backend="process") as engine:
            with pytest.raises(ValueError, match="shape"):
                engine.topk(np.array([0.5, 0.5]), K)
            with pytest.raises(ValueError, match="exceeds live"):
                engine.topk(np.array([0.5, 0.5, 0.5]), N + 1)
            with pytest.raises(ValueError, match="finite"):
                engine.insert(np.array([0.5, np.inf, 0.5]))


class TestProcessBackendDefaults:
    def test_default_start_method_is_fork_on_linux_only(self):
        import multiprocessing
        import sys

        from repro.cluster.backends.process import default_start_method

        expected = (
            "fork"
            if sys.platform.startswith("linux")
            and "fork" in multiprocessing.get_all_start_methods()
            else "spawn"
        )
        assert default_start_method() == expected

    def test_failed_cluster_build_stops_started_workers(self, data):
        """If a later shard's backend fails to build, the workers already
        started for earlier shards must be shut down, not leaked."""
        started: list[ProcessBackend] = []

        class FlakyBackend(ProcessBackend):
            name = "process"

            def build(self, spec):
                if spec.shard >= 1:
                    raise RuntimeError("no capacity for this shard")
                super().build(spec)
                started.append(self)

        with pytest.raises(RuntimeError, match="no capacity"):
            ShardedGIREngine(data, shards=3, backend=FlakyBackend)
        assert len(started) == 1
        assert started[0]._proc is None  # closed, not leaked

    def test_backend_instances_are_independent(self, spec):
        """Two process backends from one spec hold independent engines:
        a write to one is invisible to the other."""
        a = make_backend("process", spec)
        b = make_backend("process", spec)
        try:
            a.insert(np.array([0.9, 0.9, 0.9]))
            assert a.stats()["live_records"] == N + 1
            assert b.stats()["live_records"] == N
        finally:
            a.close()
            b.close()
