"""Tests for non-linear monotone scoring functions (Section 7.2).

SP must handle any per-dimension monotone function; through the g-space
reduction our CP/FP do too (an extension over the paper — see DESIGN.md).
All methods must agree with a g-space exhaustive oracle, and the resulting
region must preserve the top-k result of the *non-linear* scoring function.
"""

import pytest

from repro.baselines.exhaustive import exhaustive_gir
from repro.core.gir import compute_gir
from repro.data.synthetic import independent
from repro.index.bulkload import bulk_load_str
from repro.query.linear_scan import scan_topk
from repro.scoring import mixed_scoring, polynomial_scoring
from tests.conftest import random_query

SCORERS = [polynomial_scoring([4, 3, 2, 1]), mixed_scoring()]


@pytest.fixture(scope="module")
def setup_4d():
    data = independent(900, 4, seed=81)
    return data, bulk_load_str(data)


@pytest.mark.parametrize("scorer", SCORERS, ids=lambda s: s.name)
class TestNonLinearGIR:
    def test_topk_matches_scan(self, setup_4d, rng, scorer):
        data, tree = setup_4d
        q = random_query(rng, 4)
        gir = compute_gir(tree, data, q, 8, method="sp", scorer=scorer)
        assert gir.topk.ids == scan_topk(data.points, q, 8, scorer=scorer).ids

    @pytest.mark.parametrize("method", ["sp", "cp", "fp"])
    def test_matches_oracle(self, setup_4d, rng, scorer, method):
        data, tree = setup_4d
        q = random_query(rng, 4)
        gir = compute_gir(tree, data, q, 6, method=method, scorer=scorer)
        oracle = exhaustive_gir(data, q, 6, scorer=scorer)
        assert gir.polytope.contains_polytope(oracle.polytope)
        assert oracle.polytope.contains_polytope(gir.polytope)

    def test_sampled_vectors_preserve_result(self, setup_4d, rng, scorer):
        data, tree = setup_4d
        q = random_query(rng, 4)
        gir = compute_gir(tree, data, q, 6, method="sp", scorer=scorer)
        for q2 in gir.polytope.sample(25, rng):
            if (q2 <= 1e-9).all():
                continue
            got = scan_topk(data.points, q2, 6, scorer=scorer)
            assert got.ids == gir.topk.ids

    def test_methods_agree(self, setup_4d, rng, scorer):
        data, tree = setup_4d
        q = random_query(rng, 4)
        vols = [
            compute_gir(tree, data, q, 6, method=m, scorer=scorer).volume()
            for m in ("sp", "cp", "fp")
        ]
        assert max(vols) - min(vols) <= 1e-12 + 1e-6 * max(vols)

    def test_query_inside(self, setup_4d, rng, scorer):
        data, tree = setup_4d
        q = random_query(rng, 4)
        assert compute_gir(tree, data, q, 6, scorer=scorer).contains(q)


class TestLinearVsNonlinearDiffer:
    def test_regions_differ(self, setup_4d, rng):
        """Sanity: the scorer actually changes the geometry."""
        data, tree = setup_4d
        q = random_query(rng, 4)
        lin = compute_gir(tree, data, q, 6, method="sp")
        poly = compute_gir(
            tree, data, q, 6, method="sp", scorer=polynomial_scoring([4, 3, 2, 1])
        )
        # Either the results differ or the volumes do (generically both).
        assert (
            lin.topk.ids != poly.topk.ids
            or abs(lin.volume() - poly.volume()) > 1e-15
        )
