"""Tests for the TopKResult container and predicates module."""

import numpy as np
import pytest

from repro.geometry.predicates import affine_rank_basis, dominates, dominates_matrix
from repro.query.topk import TopKResult


class TestTopKResult:
    def make(self):
        return TopKResult(
            ids=(4, 7, 1), scores=(0.9, 0.8, 0.7), weights=np.array([0.5, 0.5])
        )

    def test_accessors(self):
        r = self.make()
        assert r.k == 3
        assert r.kth_id == 1
        assert r.kth_score == 0.7
        assert 7 in r
        assert 9 not in r

    def test_rejects_increasing_scores(self):
        with pytest.raises(ValueError, match="non-increasing"):
            TopKResult(ids=(1, 2), scores=(0.5, 0.9), weights=np.array([1.0]))

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError, match="equal length"):
            TopKResult(ids=(1, 2), scores=(0.5,), weights=np.array([1.0]))

    def test_same_composition(self):
        a = self.make()
        b = TopKResult(ids=(1, 4, 7), scores=(0.9, 0.8, 0.7), weights=a.weights)
        assert a.same_composition(b)
        assert not a.same_ordered(b)

    def test_same_ordered(self):
        a = self.make()
        b = TopKResult(ids=(4, 7, 1), scores=(0.91, 0.79, 0.7), weights=a.weights)
        assert a.same_ordered(b)


class TestDominance:
    def test_strict(self):
        assert dominates(np.array([0.5, 0.5]), np.array([0.4, 0.4]))

    def test_partial_tie(self):
        assert dominates(np.array([0.5, 0.5]), np.array([0.5, 0.4]))

    def test_equal_points_no_dominance(self):
        assert not dominates(np.array([0.5, 0.5]), np.array([0.5, 0.5]))

    def test_incomparable(self):
        assert not dominates(np.array([0.6, 0.3]), np.array([0.3, 0.6]))
        assert not dominates(np.array([0.3, 0.6]), np.array([0.6, 0.3]))

    def test_transitivity_random(self, rng):
        for _ in range(200):
            a, b, c = rng.random((3, 4))
            if dominates(a, b) and dominates(b, c):
                assert dominates(a, c)

    def test_matrix_form(self, rng):
        cands = rng.random((50, 3))
        p = rng.random(3)
        mask = dominates_matrix(cands, p)
        for i in range(50):
            assert mask[i] == dominates(cands[i], p)


class TestAffineRankBasis:
    def test_full_rank_selection(self):
        apex = np.zeros(3)
        cands = [np.eye(3)[i] for i in range(3)]
        assert affine_rank_basis(apex, cands, 3) == [0, 1, 2]

    def test_skips_dependent(self):
        apex = np.zeros(2)
        cands = [np.array([1.0, 0.0]), np.array([2.0, 0.0]), np.array([0.0, 1.0])]
        assert affine_rank_basis(apex, cands, 2) == [0, 2]

    def test_skips_apex_duplicates(self):
        apex = np.array([0.5, 0.5])
        cands = [apex.copy(), np.array([1.0, 0.5]), np.array([0.5, 1.0])]
        assert affine_rank_basis(apex, cands, 2) == [1, 2]

    def test_insufficient_rank(self):
        apex = np.zeros(3)
        cands = [np.array([1.0, 0, 0]), np.array([0.5, 0, 0])]
        assert len(affine_rank_basis(apex, cands, 3)) == 1
