"""Tests for the Monte-Carlo sensitivity module (general scoring functions)
and the Monte-Carlo polytope volume fallback."""

import numpy as np
import pytest

from repro.core.approximate import (
    GeneralMonotoneScoring,
    immutability_probability,
    immutable_ball_radius,
)
from repro.core.gir import compute_gir
from repro.data.synthetic import independent
from repro.geometry.polytope import Polytope
from repro.index.bulkload import bulk_load_str
from repro.query.brs import brs_topk
from repro.query.linear_scan import scan_topk
from repro.scoring import LinearScoring
from tests.conftest import random_query


def chebyshev_like(points: np.ndarray, weights: np.ndarray) -> np.ndarray:
    """A genuinely non-separable monotone function: soft-max of weighted
    attributes (not expressible as Σ w_i g_i(p))."""
    z = points * weights  # (m, d)
    return np.log(np.exp(4 * z).sum(axis=1)) / 4


class TestGeneralMonotoneScoring:
    def test_score_shape(self, rng):
        scorer = GeneralMonotoneScoring(chebyshev_like, 3, name="softmax")
        pts = rng.random((10, 3))
        out = scorer.score(pts, rng.random(3))
        assert out.shape == (10,)

    def test_single_point(self, rng):
        scorer = GeneralMonotoneScoring(chebyshev_like, 3)
        assert isinstance(scorer.score(rng.random(3), rng.random(3)), float)

    def test_transform_raises(self):
        scorer = GeneralMonotoneScoring(chebyshev_like, 3)
        with pytest.raises(TypeError, match="g-space"):
            scorer.transform(np.zeros((2, 3)))

    def test_rejects_bad_callable(self, rng):
        scorer = GeneralMonotoneScoring(lambda p, w: np.zeros(3), 2)
        with pytest.raises(ValueError, match="one score per point"):
            scorer.score(rng.random((5, 2)), rng.random(2))

    def test_brs_works_with_general_scorer(self, rng):
        """Index-based top-k stays correct for black-box monotone scoring."""
        data = independent(400, 3, seed=91)
        tree = bulk_load_str(data)
        scorer = GeneralMonotoneScoring(chebyshev_like, 3)
        q = random_query(rng, 3)
        run = brs_topk(tree, data.points, q, 5, scorer=scorer)
        assert run.result.ids == scan_topk(data.points, q, 5, scorer=scorer).ids


class TestImmutabilityProbability:
    def test_matches_exact_volume_for_linear(self, rng):
        """For linear scoring the MC probability estimates the GIR ratio."""
        data = independent(300, 2, seed=92)
        tree = bulk_load_str(data)
        q = random_query(rng, 2)
        gir = compute_gir(tree, data, q, 3)
        exact = gir.volume_ratio()
        mc = immutability_probability(
            data, q, 3, LinearScoring(2), samples=3_000, rng=rng
        )
        assert mc == pytest.approx(exact, abs=max(3 * np.sqrt(exact / 3_000), 0.02))

    def test_order_insensitive_at_least_sensitive(self, rng):
        data = independent(200, 2, seed=93)
        q = random_query(rng, 2)
        rng1, rng2 = np.random.default_rng(5), np.random.default_rng(5)
        strict = immutability_probability(
            data, q, 4, LinearScoring(2), samples=800, rng=rng1
        )
        loose = immutability_probability(
            data, q, 4, LinearScoring(2), samples=800, rng=rng2, order_sensitive=False
        )
        assert loose >= strict

    def test_general_function_runs(self, rng):
        data = independent(150, 3, seed=94)
        q = random_query(rng, 3)
        scorer = GeneralMonotoneScoring(chebyshev_like, 3)
        p = immutability_probability(data, q, 3, scorer, samples=300, rng=rng)
        assert 0.0 <= p <= 1.0


class TestImmutableBallRadius:
    def test_ball_preserves_result_linear(self, rng):
        data = independent(250, 2, seed=95)
        q = random_query(rng, 2)
        scorer = LinearScoring(2)
        r = immutable_ball_radius(data, q, 4, scorer, directions=32, rng=rng)
        ref = scan_topk(data.points, q, 4).ids
        for _ in range(40):
            v = rng.normal(size=2)
            v /= np.linalg.norm(v)
            probe = q + v * r * 0.95
            if ((probe >= 0) & (probe <= 1)).all():
                assert scan_topk(data.points, probe, 4).ids == ref

    def test_upper_bounds_exact_stb(self, rng):
        """Direction sampling can only overestimate the true STB radius."""
        from repro.baselines.stb import stb_radius

        data = independent(250, 2, seed=96)
        q = random_query(rng, 2)
        exact = stb_radius(data, q, 4)
        approx = immutable_ball_radius(
            data, q, 4, LinearScoring(2), directions=128, rng=rng
        )
        assert approx >= exact - 1e-3


class TestMonteCarloVolume:
    def test_matches_exact_on_wedge(self, rng):
        poly = Polytope.from_unit_box(2).with_constraints(np.array([[1.0, -1.0]]))
        mc = poly.volume_monte_carlo(samples=100_000, rng=rng)
        assert mc == pytest.approx(0.5, abs=0.01)

    def test_matches_exact_on_random_cone(self, rng):
        normals = rng.normal(size=(3, 3))
        poly = Polytope.from_unit_box(3).with_constraints(normals)
        exact = poly.volume()
        mc = poly.volume_monte_carlo(samples=150_000, rng=rng)
        assert mc == pytest.approx(exact, abs=max(0.02, 0.1 * exact))

    def test_empty_region_zero(self):
        empty = Polytope.from_unit_box(2).with_constraints(
            np.array([[1.0, -1.0], [-1.0, 1.0], [0.0, 1.0]])
        )
        assert empty.volume_monte_carlo(samples=10_000) == 0.0

    def test_bounding_box_of_unit_box(self):
        lo, hi = Polytope.from_unit_box(3).bounding_box()
        assert np.allclose(lo, 0.0) and np.allclose(hi, 1.0)
