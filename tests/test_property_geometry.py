"""Property-based tests on the geometric data structures.

Complements test_property_based.py (pipeline invariants) with randomized
checks on the hull, the facet fan and the polytope machinery themselves.
"""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from scipy.spatial import ConvexHull

from repro.geometry.convexhull import IncrementalHull
from repro.geometry.incident_facets import FacetFan
from repro.geometry.polytope import Polytope

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@st.composite
def point_cloud(draw, min_n=12, max_n=80, min_d=2, max_d=4):
    seed = draw(st.integers(0, 2**31 - 1))
    n = draw(st.integers(min_n, max_n))
    d = draw(st.integers(min_d, max_d))
    rng = np.random.default_rng(seed)
    return rng.random((n, d))


class TestHullProperties:
    @given(point_cloud())
    @SETTINGS
    def test_vertices_match_qhull(self, pts):
        own = IncrementalHull(pts).vertex_ids()
        ref = set(int(v) for v in ConvexHull(pts).vertices)
        assert own == ref

    @given(point_cloud())
    @SETTINGS
    def test_hull_contains_all_inputs(self, pts):
        hull = IncrementalHull(pts)
        for p in pts:
            assert hull.contains(p, eps=1e-8)

    @given(point_cloud(min_n=20, max_n=60))
    @SETTINGS
    def test_convex_combinations_inside(self, pts):
        hull = IncrementalHull(pts)
        rng = np.random.default_rng(0)
        w = rng.dirichlet(np.ones(pts.shape[0]), size=10)
        for combo in w @ pts:
            assert hull.contains(combo, eps=1e-8)


class TestFanProperties:
    @given(point_cloud(min_n=15, max_n=60))
    @SETTINGS
    def test_fan_equals_qhull_star(self, pts):
        d = pts.shape[1]
        apex = np.full(d, 1.2)  # strictly outscores every point under 1-vec
        fan = FacetFan(apex)
        fan.bootstrap([(i, p) for i, p in enumerate(pts)])
        if fan.degenerate:
            return
        all_pts = np.vstack([apex[None, :], pts])
        hull = ConvexHull(all_pts)
        expected: set[int] = set()
        for simplex in hull.simplices:
            if 0 in simplex:
                expected |= {int(v) - 1 for v in simplex if v != 0}
        assert fan.critical_keys() == expected

    @given(point_cloud(min_n=15, max_n=50))
    @SETTINGS
    def test_non_criticals_below_all_facets(self, pts):
        d = pts.shape[1]
        apex = np.full(d, 1.2)
        fan = FacetFan(apex)
        fan.bootstrap([(i, p) for i, p in enumerate(pts)])
        if fan.degenerate:
            return
        crits = fan.critical_keys()
        for i, p in enumerate(pts):
            if i not in crits:
                assert not fan.sees(p)

    @given(point_cloud(min_n=15, max_n=50))
    @SETTINGS
    def test_normal_cone_constraints_sound(self, pts):
        """Inside the fan's normal cone the apex beats every point."""
        d = pts.shape[1]
        apex = np.full(d, 1.2)
        fan = FacetFan(apex)
        fan.bootstrap([(i, p) for i, p in enumerate(pts)])
        crits = sorted(k for k in fan.critical_keys())
        if fan.degenerate or not crits:
            return
        normals = np.array([apex - pts[c] for c in crits])
        rng = np.random.default_rng(1)
        for q in rng.random((100, d)):
            if (normals @ q >= 0).all():
                assert (pts @ q <= apex @ q + 1e-9).all()


class TestPolytopeProperties:
    @given(st.integers(0, 2**31 - 1), st.integers(2, 4), st.integers(1, 4))
    @SETTINGS
    def test_volume_between_zero_and_one(self, seed, d, m):
        rng = np.random.default_rng(seed)
        normals = rng.normal(size=(m, d))
        poly = Polytope.from_unit_box(d).with_constraints(normals)
        vol = poly.volume()
        assert -1e-12 <= vol <= 1.0 + 1e-9

    @given(st.integers(0, 2**31 - 1), st.integers(2, 4))
    @SETTINGS
    def test_chebyshev_centre_inside(self, seed, d):
        rng = np.random.default_rng(seed)
        normals = rng.normal(size=(2, d))
        poly = Polytope.from_unit_box(d).with_constraints(normals)
        centre, radius = poly.chebyshev_center()
        if radius > 1e-9:
            assert poly.contains(centre, tol=1e-9)

    @given(st.integers(0, 2**31 - 1), st.integers(2, 4))
    @SETTINGS
    def test_vertices_satisfy_constraints(self, seed, d):
        rng = np.random.default_rng(seed)
        normals = rng.normal(size=(3, d))
        poly = Polytope.from_unit_box(d).with_constraints(normals)
        for v in poly.vertices():
            assert poly.contains(v, tol=1e-6)

    @given(st.integers(0, 2**31 - 1), st.integers(2, 3))
    @SETTINGS
    def test_axis_interval_edges_inside(self, seed, d):
        rng = np.random.default_rng(seed)
        normals = rng.normal(size=(2, d))
        poly = Polytope.from_unit_box(d).with_constraints(normals)
        centre, radius = poly.chebyshev_center()
        if radius <= 1e-6:
            return
        for axis in range(d):
            lo, hi = poly.axis_interval(axis, centre)
            if np.isnan(lo):
                continue
            probe = centre.copy()
            for edge in (lo, hi):
                probe[axis] = edge
                assert poly.contains(probe, tol=1e-6)
