"""Smoke tests for the benchmark harness driver and figure registry."""

import pytest

from repro.bench.config import SCALES, ExperimentScale
from repro.bench.figures import FIGURES
from repro.bench.harness import run_figure


@pytest.fixture(scope="module")
def tiny_scale():
    """A scale small enough for the test suite."""
    return ExperimentScale(
        name="tiny",
        n_default=600,
        n_sweep=(300, 600),
        d_sweep=(2, 3),
        d_cap_cp=3,
        k_sweep=(3, 5),
        k_default=5,
        house_n=800,
        hotel_n=800,
        queries=1,
    )


class TestRegistry:
    def test_all_paper_figures_present(self):
        assert {"6", "8", "14", "15", "16", "17", "18", "19"} <= set(FIGURES)

    def test_unknown_figure_rejected(self):
        with pytest.raises(ValueError, match="unknown figure"):
            run_figure("99", "smoke")

    def test_scale_names_resolve(self):
        assert set(SCALES) == {"smoke", "bench", "default", "paper"}


class TestRunFigure:
    @pytest.mark.parametrize("fig", ["6", "14", "16", "19", "ablation"])
    def test_runs_and_returns_tables(self, tiny_scale, fig, capsys):
        results = run_figure(fig, tiny_scale)
        out = capsys.readouterr().out
        assert results, fig
        for res in results:
            assert res.rows, res.figure
            assert all(len(r) == len(res.headers) for r in res.rows)
            assert res.title.split(":")[0] in out

    def test_out_dir_persists_tables(self, tiny_scale, tmp_path, capsys):
        run_figure("16", tiny_scale, out_dir=tmp_path)
        capsys.readouterr()
        written = list(tmp_path.glob("figure_16_tiny.txt"))
        assert len(written) == 1
        assert "Figure 16" in written[0].read_text()

    def test_string_scale_lookup(self, capsys):
        results = run_figure("19", "smoke")
        capsys.readouterr()
        assert results[0].figure == "19-cpu"


class TestGIRStatsAccessors:
    def test_totals(self):
        from repro.core.gir import GIRStats

        s = GIRStats(
            cpu_ms_topk=1.0,
            cpu_ms_phase1=2.0,
            cpu_ms_phase2=3.0,
            io_pages_topk=4,
            io_pages_phase2=6,
            io_ms_per_page=10.0,
        )
        assert s.cpu_ms_total == 5.0
        assert s.io_pages_total == 10
        assert s.io_ms_phase2 == 60.0
