"""Tests for the asyncio serving front door (`repro.serve`).

The load-bearing property: any interleaving of coalesced / batched /
direct serving is *byte-identical* in ``(rids, scores)`` to sequential
per-request serving — checked by replaying the tier's serialization log
through a fresh engine (:func:`repro.serve.replay_serial_check`),
including across interleaved insert/delete fences and with a sharded
cluster behind the front door.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.cluster import ShardedGIREngine
from repro.data.synthetic import make_synthetic
from repro.engine import GIREngine, flash_crowd_workload, mixed_workload
from repro.engine.workload import DeleteOp, InsertOp, Request
from repro.index.bulkload import bulk_load_str
from repro.serve import (
    Overloaded,
    Rejected,
    ServeConfig,
    ServeFront,
    ServeResponse,
    replay_serial_check,
    run_serve_workload,
)

D = 3
N = 400


@pytest.fixture(scope="module")
def data():
    return make_synthetic("IND", N, D, seed=7)


def fresh_engine(data) -> GIREngine:
    return GIREngine(data, bulk_load_str(data), cache_capacity=64)


def drive(engine, workload, config=None, concurrency=24):
    """Run a workload through a fresh front door; return (front, report)."""

    async def go():
        front = ServeFront(engine, config)
        async with front:
            report = await run_serve_workload(front, workload, concurrency)
        return front, report

    return asyncio.run(go())


class TestServeEquivalence:
    """Byte-identity of every serving path against sequential replay."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_flash_crowd_interleaving_matches_sequential(self, data, seed):
        workload = flash_crowd_workload(D, 80, k=8, rng=seed)
        front, report = drive(fresh_engine(data), workload)
        verdict = replay_serial_check(front.log, fresh_engine(data))
        assert verdict["all_match"], verdict["examples"]
        assert verdict["requests"] == front.stats.reads_served
        assert front.stats.accounting_ok()

    @pytest.mark.parametrize(
        "config",
        [
            ServeConfig(),  # batched + coalesced (the default path)
            ServeConfig(coalesce=False),  # batched only
            ServeConfig(batch_max=1, coalesce=False),  # direct
            ServeConfig(batch_window_ms=0.1, batch_max=4),  # tiny batches
            ServeConfig(max_inflight_batches=1),  # fully serialized jobs
        ],
        ids=["default", "no-coalesce", "direct", "tiny-batch", "one-job"],
    )
    def test_every_serving_mode_matches_sequential(self, data, config):
        workload = flash_crowd_workload(D, 60, k=8, rng=3)
        front, report = drive(fresh_engine(data), workload, config)
        verdict = replay_serial_check(front.log, fresh_engine(data))
        assert verdict["all_match"], verdict["examples"]
        assert front.stats.accounting_ok()

    @pytest.mark.parametrize("seed", [0, 1])
    def test_matches_across_insert_delete_fences(self, data, seed):
        workload = mixed_workload(
            D, 70, base_n=N, k=8, update_fraction=0.3, rng=seed
        )
        front, report = drive(fresh_engine(data), workload)
        assert front.stats.writes_applied > 0
        assert front.stats.fences == front.stats.writes_applied
        verdict = replay_serial_check(front.log, fresh_engine(data))
        assert verdict["all_match"], verdict["examples"]
        assert verdict["writes"] == front.stats.writes_applied

    def test_sharded_cluster_front_matches_single_engine_replay(self, data):
        workload = mixed_workload(
            D, 50, base_n=N, k=8, update_fraction=0.2, rng=4
        )
        with ShardedGIREngine(data, shards=2) as cluster:
            front, report = drive(cluster, workload)
            verdict = replay_serial_check(front.log, fresh_engine(data))
        assert verdict["all_match"], verdict["examples"]


class TestCoalescing:
    def test_flash_crowd_coalesces(self, data):
        workload = flash_crowd_workload(
            D, 96, k=8, hot=2, duplicate_fraction=0.9, rng=5
        )
        front, report = drive(fresh_engine(data), workload, concurrency=48)
        stats = front.stats
        assert stats.coalesced_served > 0
        assert stats.engine_requests < stats.reads_served
        assert stats.fan_in_ratio > 1.0
        assert (
            stats.reads_served
            == stats.engine_requests + stats.coalesced_served
        )

    def test_identical_burst_coalesces_to_one_engine_request(self, data):
        """A simultaneous burst of one weight vector is one engine call:
        all admissions land in the ingress queue before the dispatcher's
        batch resumes, so the duplicates attach to the first leader."""
        engine = fresh_engine(data)
        w = np.full(D, 1.0 / D)

        async def burst():
            async with ServeFront(engine) as front:
                responses = await asyncio.gather(
                    *(front.topk(w, k=8) for _ in range(16))
                )
                return front, responses

        front, responses = asyncio.run(burst())
        assert front.stats.engine_requests == 1
        assert front.stats.coalesced_served == 15
        leader = [r for r in responses if r.via == "engine"]
        followers = [r for r in responses if r.via == "coalesced"]
        assert len(leader) == 1 and len(followers) == 15
        for resp in followers:
            assert resp.ids == leader[0].ids
            assert resp.scores == leader[0].scores
            assert resp.pages_read == 0
            assert resp.source.startswith("coalesced:")

    def test_coalesced_answers_equal_direct_answers(self, data):
        """Every coalesced response must byte-match what the same request
        served directly (no batching, no coalescing) returns."""
        workload = flash_crowd_workload(D, 60, k=8, rng=6)
        front, report = drive(fresh_engine(data), workload)
        direct = fresh_engine(data)
        for resp in report.outcomes:
            assert isinstance(resp, ServeResponse)

            async def one(weights=resp.weights, k=resp.k):
                async with ServeFront(
                    direct, ServeConfig(batch_max=1, coalesce=False)
                ) as f:
                    return await f.topk(weights, k)

            ref = asyncio.run(one())
            assert resp.ids == ref.ids
            assert resp.scores == ref.scores


class TestBackpressure:
    def test_overload_sheds_with_exact_accounting(self, data):
        workload = flash_crowd_workload(D, 80, k=8, rng=7)
        front, report = drive(
            fresh_engine(data),
            workload,
            ServeConfig(max_pending=4),
            concurrency=64,
        )
        stats = front.stats
        assert stats.shed > 0
        assert stats.arrivals == len(list(workload))
        assert stats.arrivals == stats.admitted + stats.rejected + stats.shed
        assert stats.accounting_ok()
        sheds = [o for o in report.outcomes if isinstance(o, Overloaded)]
        assert len(sheds) == stats.shed
        err = sheds[0].to_dict()
        assert err["error"] == "overloaded"
        assert err["max_pending"] == 4
        verdict = replay_serial_check(front.log, fresh_engine(data))
        assert verdict["all_match"], verdict["examples"]

    def test_admitted_work_still_completes_under_shedding(self, data):
        workload = flash_crowd_workload(D, 40, k=8, rng=8)
        front, report = drive(
            fresh_engine(data),
            workload,
            ServeConfig(max_pending=2),
            concurrency=40,
        )
        served = [o for o in report.outcomes if isinstance(o, ServeResponse)]
        assert len(served) == front.stats.reads_served
        assert all(len(r.ids) == 8 for r in served)


class TestAdmission:
    def run_front(self, data, coro_factory):
        async def go():
            async with ServeFront(fresh_engine(data)) as front:
                return await coro_factory(front)

        return asyncio.run(go())

    def test_rejects_nan_weights(self, data):
        w = np.full(D, np.nan)
        with pytest.raises(Rejected):
            self.run_front(data, lambda f: f.topk(w, k=5))

    def test_rejects_wrong_dimension(self, data):
        with pytest.raises(Rejected):
            self.run_front(data, lambda f: f.topk(np.ones(D + 2) / 5, k=5))

    @pytest.mark.parametrize("k", [0, -1, 2.5, True])
    def test_rejects_bad_k(self, data, k):
        w = np.full(D, 1.0 / D)
        with pytest.raises(Rejected):
            self.run_front(data, lambda f: f.topk(w, k=k))

    def test_rejects_bad_insert_and_delete(self, data):
        with pytest.raises(Rejected):
            self.run_front(data, lambda f: f.insert(np.full(D, np.inf)))
        with pytest.raises(Rejected):
            self.run_front(data, lambda f: f.delete(-3))

    def test_rejections_are_counted_not_served(self, data):
        async def go(front):
            try:
                await front.topk(np.full(D, np.nan), k=5)
            except Rejected:
                pass
            await front.topk(np.full(D, 1.0 / D), k=5)
            return front.stats

        stats = self.run_front(data, go)
        assert stats.rejected == 1
        assert stats.reads_served == 1
        assert stats.accounting_ok()

    def test_structured_error_shape(self):
        err = Rejected("bad weights", d=3).to_dict()
        assert err == {"error": "rejected", "message": "bad weights", "d": 3}

    def test_closed_front_rejects(self, data):
        engine = fresh_engine(data)

        async def go():
            front = ServeFront(engine)
            await front.start()
            await front.close()
            with pytest.raises(Rejected):
                await front.topk(np.full(D, 1.0 / D), k=5)

        asyncio.run(go())


class TestReportAndStats:
    def test_report_dict_carries_service_stats(self, data):
        workload = flash_crowd_workload(D, 48, k=8, rng=9)
        front, report = drive(fresh_engine(data), workload)
        payload = report.to_dict()
        for key in (
            "arrivals",
            "shed",
            "fan_in_ratio",
            "queue_depth_peak",
            "wait_p50_ms",
            "service_p95_ms",
            "coalesce_fallbacks",
            "throughput_rps",
        ):
            assert key in payload, key
        assert payload["workload_kind"] == "flash_crowd"
        assert payload["reads_served"] == front.stats.reads_served

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ServeConfig(max_pending=0)
        with pytest.raises(ValueError):
            ServeConfig(batch_window_ms=-1.0)
        with pytest.raises(ValueError):
            ServeConfig(coalesce_radius=-0.1)


class TestFlashCrowdWorkload:
    def test_shape_and_kind(self):
        workload = flash_crowd_workload(D, 100, k=7, rng=0)
        ops = list(workload)
        assert workload.kind == "flash_crowd"
        assert len(ops) == 100
        assert all(isinstance(op, Request) and op.k == 7 for op in ops)
        assert all(op.weights.shape == (D,) for op in ops)

    def test_bursts_contain_exact_duplicates(self):
        workload = flash_crowd_workload(
            D, 200, hot=2, duplicate_fraction=0.9, rng=1
        )
        keys = [op.weights.tobytes() for op in workload]
        repeats = len(keys) - len(set(keys))
        assert repeats > len(keys) // 4

    def test_deterministic_under_seed(self):
        a = [op.weights.tobytes() for op in flash_crowd_workload(D, 50, rng=2)]
        b = [op.weights.tobytes() for op in flash_crowd_workload(D, 50, rng=2)]
        assert a == b

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"hot": 0},
            {"burst_len": 0},
            {"duplicate_fraction": 1.5},
            {"background_fraction": -0.1},
            {"spread": -1.0},
        ],
    )
    def test_rejects_bad_parameters(self, kwargs):
        with pytest.raises(ValueError):
            flash_crowd_workload(D, 10, **kwargs)


class TestRunnerValidation:
    def test_rejects_nonpositive_concurrency(self, data):
        async def go():
            async with ServeFront(fresh_engine(data)) as front:
                await run_serve_workload(front, [], concurrency=0)

        with pytest.raises(ValueError):
            asyncio.run(go())

    def test_handles_explicit_op_lists(self, data):
        ops = [
            Request(weights=np.full(D, 1.0 / D), k=5),
            InsertOp(point=np.full(D, 0.5)),
            DeleteOp(rid=0),
            Request(weights=np.full(D, 1.0 / D), k=5),
        ]
        front, report = drive(fresh_engine(data), ops, concurrency=1)
        assert report.workload_kind == "custom"
        assert front.stats.writes_applied == 2
        verdict = replay_serial_check(front.log, fresh_engine(data))
        assert verdict["all_match"], verdict["examples"]
