"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.synthetic import anticorrelated, correlated, independent
from repro.index.bulkload import bulk_load_str


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return np.random.default_rng(20140622)  # SIGMOD'14 started June 22


@pytest.fixture(scope="session")
def small_ind_2d():
    """A small independent 2-d dataset with its bulk-loaded tree."""
    data = independent(400, 2, seed=7)
    return data, bulk_load_str(data)


@pytest.fixture(scope="session")
def small_ind_4d():
    data = independent(1200, 4, seed=11)
    return data, bulk_load_str(data)


@pytest.fixture(scope="session")
def small_anti_3d():
    data = anticorrelated(800, 3, seed=13)
    return data, bulk_load_str(data)


@pytest.fixture(scope="session")
def small_cor_3d():
    data = correlated(800, 3, seed=17)
    return data, bulk_load_str(data)


def random_query(rng: np.random.Generator, d: int) -> np.ndarray:
    """A strictly positive query vector away from the space boundary."""
    return rng.random(d) * 0.8 + 0.1
