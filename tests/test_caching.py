"""Tests for GIR-based result caching (Section 1 application)."""

import dataclasses

import numpy as np
import pytest

from repro.core.caching import GIRCache
from repro.core.gir import compute_gir
from repro.data.synthetic import independent
from repro.geometry.polytope import Polytope
from repro.index.bulkload import bulk_load_str
from repro.query.linear_scan import scan_topk
from tests.conftest import random_query


@pytest.fixture(scope="module")
def cached_setup():
    data = independent(800, 3, seed=71)
    tree = bulk_load_str(data)
    return data, tree


class TestLookup:
    def test_hit_inside_gir(self, cached_setup, rng):
        data, tree = cached_setup
        q = random_query(rng, 3)
        gir = compute_gir(tree, data, q, 10)
        cache = GIRCache()
        cache.insert(gir)
        # Probe with a vector sampled inside the GIR.
        probes = gir.polytope.sample(5, rng)
        for probe in probes:
            if (probe <= 1e-9).all():
                continue
            hit = cache.lookup(probe, 10)
            assert hit is not None and not hit.partial
            assert hit.ids == gir.topk.ids
            # The served answer is genuinely correct:
            assert hit.ids == scan_topk(data.points, probe, 10).ids

    def test_miss_outside_gir(self, cached_setup, rng):
        data, tree = cached_setup
        q = random_query(rng, 3)
        gir = compute_gir(tree, data, q, 10)
        cache = GIRCache()
        cache.insert(gir)
        # A far-away vector with a different result must miss or, if inside,
        # serve the identical result — verify no wrong answers either way.
        for _ in range(20):
            probe = rng.random(3)
            hit = cache.lookup(probe, 10)
            if hit is not None:
                assert hit.ids == scan_topk(data.points, probe, 10).ids

    def test_smaller_k_served_from_prefix(self, cached_setup, rng):
        data, tree = cached_setup
        q = random_query(rng, 3)
        gir = compute_gir(tree, data, q, 10)
        cache = GIRCache()
        cache.insert(gir)
        hit = cache.lookup(q, 3)
        assert hit is not None and not hit.partial
        assert hit.ids == gir.topk.ids[:3]
        assert hit.ids == scan_topk(data.points, q, 3).ids

    def test_larger_k_partial(self, cached_setup, rng):
        data, tree = cached_setup
        q = random_query(rng, 3)
        gir = compute_gir(tree, data, q, 10)
        cache = GIRCache()
        cache.insert(gir)
        hit = cache.lookup(q, 25)
        assert hit is not None and hit.partial
        assert hit.ids == gir.topk.ids
        # Partial answer is the true prefix of the larger result.
        assert hit.ids == scan_topk(data.points, q, 25).ids[:10]

    def test_dimension_mismatch_misses(self, cached_setup, rng):
        data, tree = cached_setup
        gir = compute_gir(tree, data, random_query(rng, 3), 5)
        cache = GIRCache()
        cache.insert(gir)
        assert cache.lookup(np.array([0.5, 0.5]), 5) is None


class TestEvictionAndStats:
    def test_lru_eviction(self, cached_setup, rng):
        data, tree = cached_setup
        cache = GIRCache(capacity=2)
        girs = [compute_gir(tree, data, random_query(rng, 3), 5) for _ in range(3)]
        for g in girs:
            cache.insert(g)
        assert len(cache) == 2
        # The first-inserted entry is gone: its own q misses unless covered
        # by a later entry's GIR.
        hit = cache.lookup(girs[0].weights, 5)
        if hit is not None:
            assert hit.ids == girs[0].topk.ids or hit.entry_key != 0

    def test_stats_counts(self, cached_setup, rng):
        data, tree = cached_setup
        q = random_query(rng, 3)
        gir = compute_gir(tree, data, q, 5)
        cache = GIRCache()
        cache.insert(gir)
        cache.lookup(q, 5)
        outside = next(
            c for c in (rng.random(3) for _ in range(1000)) if not gir.contains(c)
        )
        cache.lookup(outside, 5)
        stats = cache.stats()
        assert stats["hits"] == 1
        assert stats["full_hits"] == 1
        assert stats["misses"] == 1
        assert stats["entries"] == 1

    def test_stats_non_overlapping(self, cached_setup, rng):
        """Every lookup lands in exactly one of full/partial/miss."""
        data, tree = cached_setup
        q = random_query(rng, 3)
        cache = GIRCache()
        cache.insert(compute_gir(tree, data, q, 5))
        cache.lookup(q, 3)   # full
        cache.lookup(q, 20)  # partial
        # Probe random points until one misses (counts toward stats).
        next(
            c for c in (rng.random(3) for _ in range(1000))
            if cache.lookup(c, 5) is None
        )
        stats = cache.stats()
        assert stats["full_hits"] == 1
        assert stats["partial_hits"] == 1
        assert stats["full_hits"] + stats["partial_hits"] == stats["hits"]
        assert stats["misses"] >= 1

    def test_insert_evicts_subsumed_entry(self, cached_setup, rng):
        """Re-inserting a GIR containing an older entry's query vector (at
        the same or larger k) replaces it instead of accumulating."""
        data, tree = cached_setup
        q = random_query(rng, 3)
        gir = compute_gir(tree, data, q, 5)
        cache = GIRCache()
        cache.insert(gir)
        cache.insert(compute_gir(tree, data, q, 5))
        assert len(cache) == 1
        assert cache.stats()["subsumption_evictions"] == 1
        # The surviving entry still serves the query.
        assert cache.lookup(q, 5) is not None

    def test_insert_keeps_wider_shallow_entries(self, cached_setup, rng):
        """A deeper-k GIR is a *smaller* region (more constraints), so it
        must not evict a shallower entry at the same spot: the shallow
        entry's wider region still serves traffic the deep one misses."""
        data, tree = cached_setup
        q = random_query(rng, 3)
        cache = GIRCache()
        shallow = compute_gir(tree, data, q, 5)
        cache.insert(shallow)
        cache.insert(compute_gir(tree, data, q, 15))
        assert len(cache) == 2
        assert cache.stats()["subsumption_evictions"] == 0
        # A probe inside the wide region but outside the deep one is still
        # a full hit at k=5.
        for probe in shallow.polytope.sample(40, rng):
            if (probe <= 1e-9).all():
                continue
            assert cache.lookup(probe, 5) is not None

    def test_insert_keeps_deeper_entries(self, cached_setup, rng):
        """An entry cached for a larger k is NOT subsumed by a shallower
        GIR at the same spot — it still serves deeper requests."""
        data, tree = cached_setup
        q = random_query(rng, 3)
        cache = GIRCache()
        cache.insert(compute_gir(tree, data, q, 15))
        cache.insert(compute_gir(tree, data, q, 5))
        assert len(cache) == 2
        hit = cache.lookup(q, 15)
        assert hit is not None and not hit.partial and len(hit.ids) == 15

    def test_insert_skips_entry_subsumed_by_existing(self, cached_setup, rng):
        """Regression: the reverse subsumption direction. A new same-k
        entry whose own query vector lies inside an existing entry's
        region — while its (narrower) region does not contain the existing
        entry's vector, so the forward check cannot fire — must be
        *skipped*, refreshing the existing entry instead of crowding the
        LRU with a redundant region."""
        data, tree = cached_setup
        q = random_query(rng, 3)
        gir = compute_gir(tree, data, q, 5)
        cache = GIRCache()
        key = cache.insert(gir)
        # A second, unrelated entry so the recency refresh is observable.
        other = compute_gir(tree, data, np.array([0.15, 0.9, 0.12]), 7)
        other_key = cache.insert(other)
        probe = next(
            p
            for p in gir.polytope.sample(100, rng)
            if (p > 1e-6).all() and np.linalg.norm(p - q) > 1e-3
        )
        # Narrow the region with a half-plane keeping `probe`, cutting `q`.
        n_vec = probe - q
        mid = (probe + q) / 2.0
        narrow = Polytope(
            np.vstack([gir.polytope.A, -n_vec[None, :]]),
            np.concatenate([gir.polytope.b, [-(n_vec @ mid)]]),
        )
        assert narrow.contains(probe) and not narrow.contains(q)
        redundant = dataclasses.replace(gir, weights=probe, polytope=narrow)
        returned = cache.insert(redundant)
        assert returned == key  # the existing entry serves instead
        assert len(cache) == 2
        stats = cache.stats()
        assert stats["subsumption_skips"] == 1
        assert stats["subsumption_evictions"] == 0
        # The skip refreshed the host's recency: it is now MRU.
        assert cache.entry_keys() == [other_key, key]

    def test_capacity_evictions_counted(self, cached_setup, rng):
        """Regression: LRU-capacity overflow must be visible in stats() so
        eviction counters fully explain entry churn."""
        data, tree = cached_setup
        cache = GIRCache(capacity=2)
        inserts = 0
        for _ in range(12):
            cache.insert(compute_gir(tree, data, random_query(rng, 3), 5))
            inserts += 1
            if cache.stats()["capacity_evictions"] >= 2:
                break
        stats = cache.stats()
        assert stats["capacity_evictions"] >= 1
        assert stats["entries"] <= 2
        # Churn bookkeeping closes exactly: every successful insert is
        # either still cached or accounted to one eviction counter.
        assert inserts - stats["subsumption_skips"] == (
            stats["entries"]
            + stats["subsumption_evictions"]
            + stats["capacity_evictions"]
            + stats["invalidation_evictions"]
        )

    def test_vectorized_lookup_matches_scan(self, cached_setup, rng):
        """The region-index lookup and the per-entry reference scan give
        identical hits (entry, prefix, partial flag) and identical
        accounting on the same probe stream."""
        data, tree = cached_setup
        girs = [
            compute_gir(tree, data, random_query(rng, 3), int(k))
            for k in (5, 5, 10, 10, 15)
        ]
        vec, scan = GIRCache(), GIRCache()
        for g in girs:
            assert vec.insert(g) == scan.insert(g)
        for _ in range(150):
            probe = rng.random(3)
            k = int(rng.integers(3, 18))
            hv = vec.lookup(probe, k)
            hs = scan.lookup_scan(probe, k)
            assert (hv is None) == (hs is None)
            if hv is not None:
                assert (hv.ids, hv.partial, hv.entry_key) == (
                    hs.ids, hs.partial, hs.entry_key,
                )
        # Grid probe counters are instrumentation of the vectorized path
        # only — the reference scan never consults the grid.
        sv, ss = vec.stats(), scan.stats()
        for blob in (sv, ss):
            blob.pop("grid_probes")
            blob.pop("grid_negatives")
        assert sv == ss

    def test_lookup_batch_matches_sequential(self, cached_setup, rng):
        data, tree = cached_setup
        girs = [
            compute_gir(tree, data, random_query(rng, 3), 8) for _ in range(4)
        ]
        batched, sequential = GIRCache(), GIRCache()
        for g in girs:
            batched.insert(g)
            sequential.insert(g)
        probes = np.stack([rng.random(3) for _ in range(80)])
        ks = [int(k) for k in rng.integers(4, 14, size=80)]
        batch_hits = batched.lookup_batch(probes, ks)
        seq_hits = [sequential.lookup(p, k) for p, k in zip(probes, ks)]
        assert len(batch_hits) == len(seq_hits)
        for hb, hs in zip(batch_hits, seq_hits):
            assert (hb is None) == (hs is None)
            if hb is not None:
                assert (hb.ids, hb.partial, hb.entry_key) == (
                    hs.ids, hs.partial, hs.entry_key,
                )
        assert batched.stats() == sequential.stats()

    def test_lookup_batch_stop_after_non_full(self, cached_setup, rng):
        data, tree = cached_setup
        q = random_query(rng, 3)
        cache = GIRCache()
        cache.insert(compute_gir(tree, data, q, 10))
        outside = next(
            c for c in (rng.random(3) for _ in range(1000))
            if not cache.entry(cache.entry_keys()[0]).contains(c)
        )
        W = np.stack([q, q, outside, q])
        hits = cache.lookup_batch(W, 10, stop_after_non_full=True)
        # Stops at (and accounts) the miss; the trailing hit is not served.
        assert len(hits) == 3
        assert hits[0] is not None and hits[1] is not None
        assert hits[2] is None
        assert cache.stats()["full_hits"] == 2
        assert cache.stats()["misses"] == 1

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            GIRCache(capacity=0)

    def test_origin_never_hits(self, cached_setup, rng):
        """The GIR is clipped to weight vectors; the origin ranks nothing
        (all scores zero) so serving it from cache would be wrong — the
        polytope technically contains the origin (it is the cone apex), so
        callers must not look up the zero vector. Document via behaviour:
        lookup at origin returns the cached entry, whose use is undefined."""
        data, tree = cached_setup
        gir = compute_gir(tree, data, random_query(rng, 3), 5)
        cache = GIRCache()
        cache.insert(gir)
        # This is a documented edge: the zero vector is degenerate for
        # ranking; we only assert the call does not crash.
        cache.lookup(np.zeros(3), 5)


class TestUpdateInvalidation:
    def test_evict_and_flush_mechanics(self, cached_setup, rng):
        data, tree = cached_setup
        cache = GIRCache()
        keys = [
            cache.insert(compute_gir(tree, data, random_query(rng, 3), 5))
            for _ in range(3)
        ]
        assert cache.evict([keys[0], 9999]) == 1  # unknown keys ignored
        assert len(cache) == 2
        assert cache.flush() == 2
        assert len(cache) == 0
        assert cache.stats()["invalidation_evictions"] == 3

    def test_insert_invalidation_halfspace_test(self, cached_setup, rng):
        """A challenger dominating the k-th record invalidates the entry; a
        point dominated by it never does."""
        from repro.core.caching import invalidated_by_insert

        data, tree = cached_setup
        q = random_query(rng, 3)
        gir = compute_gir(tree, data, q, 10)
        kth = data.points[gir.topk.kth_id]
        above = np.clip(kth + 0.05, 0, 1)  # dominates p_k strictly
        below = np.clip(kth - 0.05, 0, 1)  # dominated by p_k
        assert invalidated_by_insert(gir, above, kth)
        assert not invalidated_by_insert(gir, below, kth)

    def test_insert_invalidation_matches_ground_truth(self, cached_setup, rng):
        """The LP verdict agrees with sampling: a non-invalidating insert
        leaves the cached top-k intact at sampled interior vectors."""
        from repro.core.caching import invalidated_by_insert

        data, tree = cached_setup
        q = random_query(rng, 3)
        gir = compute_gir(tree, data, q, 10)
        kth = data.points[gir.topk.kth_id]
        for _ in range(10):
            p_new = rng.random(3)
            verdict = invalidated_by_insert(gir, p_new, kth)
            extended = np.vstack([data.points, p_new])
            disturbed = False
            for probe in gir.polytope.sample(8, rng):
                if (probe <= 1e-9).all():
                    continue
                new_ids = scan_topk(extended, probe, 10).ids
                if new_ids != gir.topk.ids:
                    disturbed = True
                    break
            # The LP test is exact for the region, so sampling can never
            # observe a disturbance the LP missed.
            assert verdict or not disturbed

    def test_delete_invalidation_result_and_tset(self, cached_setup, rng):
        from repro.core.caching import invalidated_by_delete

        data, tree = cached_setup
        q = random_query(rng, 3)
        gir = compute_gir(tree, data, q, 10)
        member = gir.topk.ids[3]
        assert invalidated_by_delete(gir, member)
        outsider = next(
            rid for rid in range(data.n) if rid not in gir.topk.ids
        )
        assert not invalidated_by_delete(gir, outsider)
        # T-set membership matters only when a run is retained.
        assert invalidated_by_delete(gir, outsider, tset_ids={outsider})
        assert not invalidated_by_delete(gir, outsider, tset_ids={outsider + 1})

    def test_insert_invalidation_score_tie_uses_tie_break(self, cached_setup, rng):
        """A challenger with the k-th record's exact g-image ties everywhere;
        whether it disturbs the entry is decided by the caller's tie-break
        verdict (an inserted duplicate always wins on its fresher rid)."""
        from repro.core.caching import invalidated_by_insert

        data, tree = cached_setup
        q = random_query(rng, 3)
        gir = compute_gir(tree, data, q, 10)
        kth = data.points[gir.topk.kth_id]
        assert not invalidated_by_insert(gir, kth, kth)  # tie loses: harmless
        assert invalidated_by_insert(gir, kth, kth, tie_wins=True)


class TestCostPolicy:
    """Greedy-Dual cost-aware eviction (policy="cost")."""

    def test_rejects_bad_policy(self):
        with pytest.raises(ValueError):
            GIRCache(policy="fifo")

    def test_gain_formula(self, cached_setup, rng):
        data, tree = cached_setup
        cache = GIRCache(policy="cost")
        gir = compute_gir(tree, data, random_query(rng, 3), 5)
        _center, radius = gir.polytope.chebyshev_center()
        expected = max(radius, 1e-3) ** 3 * (1.0 + gir.stats.io_pages_total)
        assert cache._entry_gain(gir) == pytest.approx(expected)

    def test_cost_evicts_min_priority(self, cached_setup, rng):
        """Capacity overflow removes the minimum Greedy-Dual priority —
        which may be the just-inserted entry itself when its gain is small
        relative to the incumbents (implicit admission control)."""
        data, tree = cached_setup
        probe = GIRCache(policy="cost")
        girs = sorted(
            (compute_gir(tree, data, random_query(rng, 3), 5) for _ in range(10)),
            key=probe._entry_gain,
        )
        lo, hi = girs[0], girs[-1]
        assert probe._entry_gain(hi) > probe._entry_gain(lo)
        checked = 0
        for third in girs[1:-1]:
            cache = GIRCache(capacity=2, policy="cost")
            cache.insert(lo)
            cache.insert(hi)
            if len(cache) != 2:
                continue  # subsumption interfered; try another filler
            prio = dict(cache._priority)
            gain_third = cache._entry_gain(third)
            total = cache._gain_total + gain_third
            predicted = float(np.sqrt(gain_third * 3.0 / total))
            key_third = cache.insert(third)
            if cache.cost_evictions != 1:
                continue
            prio[key_third] = predicted
            victim = min(prio, key=prio.__getitem__)
            assert set(cache.entry_keys()) == set(prio) - {victim}
            # The clock advanced to the victim's priority so stale
            # incumbents age out at LRU speed.
            assert cache._clock == pytest.approx(prio[victim])
            checked += 1
        assert checked > 0

    def test_eviction_counter_split(self, cached_setup, rng):
        """Each policy increments only its own counter; the legacy
        capacity_evictions total is their sum and churn still closes."""
        data, tree = cached_setup
        for policy in ("lru", "cost"):
            cache = GIRCache(capacity=2, policy=policy)
            inserts = 0
            for _ in range(12):
                cache.insert(compute_gir(tree, data, random_query(rng, 3), 5))
                inserts += 1
                if cache.capacity_evictions >= 2:
                    break
            stats = cache.stats()
            assert stats["capacity_evictions"] >= 1
            if policy == "lru":
                assert stats["cost_evictions"] == 0
                assert stats["lru_evictions"] == stats["capacity_evictions"]
            else:
                assert stats["lru_evictions"] == 0
                assert stats["cost_evictions"] == stats["capacity_evictions"]
            assert inserts - stats["subsumption_skips"] == (
                stats["entries"]
                + stats["subsumption_evictions"]
                + stats["capacity_evictions"]
                + stats["invalidation_evictions"]
            )

    def test_flush_clears_scoring_state(self, cached_setup, rng):
        data, tree = cached_setup
        cache = GIRCache(capacity=4, policy="cost")
        for _ in range(3):
            cache.insert(compute_gir(tree, data, random_query(rng, 3), 5))
        assert cache._gain and cache._priority
        cache.flush()
        assert not cache._gain and not cache._priority
        assert cache._gain_total == 0.0
        # Reusable after the flush.
        cache.insert(compute_gir(tree, data, random_query(rng, 3), 5))
        assert len(cache) == 1


class TestGridFlag:
    def test_grid_false_disables_prescreen(self, cached_setup, rng):
        data, tree = cached_setup
        cache = GIRCache(grid=False)
        cache.insert(compute_gir(tree, data, random_query(rng, 3), 5))
        assert all(index.grid is None for index in cache._indexes.values())
        for _ in range(20):
            cache.lookup(rng.random(3), 5)
        stats = cache.stats()
        assert stats["grid_probes"] == 0
        assert stats["grid_negatives"] == 0

    def test_grid_true_counts_probes(self, cached_setup, rng):
        data, tree = cached_setup
        cache = GIRCache()
        cache.insert(compute_gir(tree, data, random_query(rng, 3), 5))
        for _ in range(20):
            cache.lookup(rng.random(3), 5)
        assert cache.stats()["grid_probes"] == 20


class TestPrescreenMemoization:
    def test_screen_entry_computed_once(self, cached_setup, rng, monkeypatch):
        """Regression: repeated prescreen_insert must not recompute vertex
        sets or Chebyshev centres — each entry's screen blob (including the
        degenerate ball fallback) is materialized exactly once."""
        data, tree = cached_setup
        cache = GIRCache()
        girs = [compute_gir(tree, data, random_query(rng, 3), 5) for _ in range(4)]
        for g in girs:
            cache.insert(g)
        entries = len(cache)
        # Force one entry down the Chebyshev-ball fallback path.
        fallback = cache.entry(cache.entry_keys()[0]).polytope
        monkeypatch.setattr(
            type(fallback), "vertices_exact", property(lambda self: False)
        )
        calls = {"vertices": 0, "chebyshev": 0}
        real_vertices = Polytope.vertices
        real_chebyshev = Polytope.chebyshev_center

        def counting_vertices(self):
            calls["vertices"] += 1
            return real_vertices(self)

        def counting_chebyshev(self):
            calls["chebyshev"] += 1
            return real_chebyshev(self)

        monkeypatch.setattr(Polytope, "vertices", counting_vertices)
        monkeypatch.setattr(Polytope, "chebyshev_center", counting_chebyshev)
        point = rng.random(3)
        first = cache.prescreen_insert(point)
        assert calls["vertices"] <= entries
        assert calls["chebyshev"] <= entries
        baseline = dict(calls)
        for _ in range(5):
            again = cache.prescreen_insert(rng.random(3))
            assert again.screened >= 0
        assert calls == baseline
        assert first.screened + len(first.ties) + len(first.candidates) == entries
