"""Tests for the dynamic R*-tree."""

import numpy as np
import pytest

from repro.data.synthetic import independent
from repro.index.rtree import RStarTree
from repro.index.storage import PageStore


def build_by_insertion(points: np.ndarray, **kwargs) -> RStarTree:
    tree = RStarTree(points.shape[1], **kwargs)
    for rid, p in enumerate(points):
        tree.insert(p, rid)
    return tree


class TestInsertion:
    def test_single_insert(self):
        tree = RStarTree(2)
        tree.insert(np.array([0.5, 0.5]), 0)
        assert tree.size == 1
        tree.validate()

    def test_many_inserts_validate(self):
        pts = independent(500, 2, seed=1).points
        tree = build_by_insertion(pts, leaf_capacity=8, internal_capacity=8)
        assert tree.size == 500
        assert tree.height >= 3
        tree.validate()

    def test_inserts_3d(self):
        pts = independent(300, 3, seed=2).points
        tree = build_by_insertion(pts, leaf_capacity=6, internal_capacity=6)
        tree.validate()

    def test_all_points_findable(self):
        pts = independent(200, 2, seed=3).points
        tree = build_by_insertion(pts, leaf_capacity=8, internal_capacity=8)
        found = sorted(tree.range_query(np.zeros(2), np.ones(2)))
        assert found == list(range(200))

    def test_wrong_dimension_rejected(self):
        tree = RStarTree(3)
        with pytest.raises(ValueError):
            tree.insert(np.array([0.5, 0.5]), 0)

    def test_duplicate_points_allowed(self):
        tree = RStarTree(2, leaf_capacity=4, internal_capacity=4)
        for rid in range(20):
            tree.insert(np.array([0.5, 0.5]), rid)
        assert tree.size == 20
        tree.validate()

    def test_capacity_too_small_rejected(self):
        with pytest.raises(ValueError):
            RStarTree(2, leaf_capacity=1)


class TestRangeQuery:
    def test_window(self):
        pts = independent(400, 2, seed=4).points
        tree = build_by_insertion(pts, leaf_capacity=8, internal_capacity=8)
        lo, hi = np.array([0.2, 0.3]), np.array([0.6, 0.7])
        expected = {
            i for i, p in enumerate(pts) if (p >= lo).all() and (p <= hi).all()
        }
        assert set(tree.range_query(lo, hi)) == expected

    def test_empty_window(self):
        pts = independent(100, 2, seed=5).points
        tree = build_by_insertion(pts, leaf_capacity=8, internal_capacity=8)
        got = tree.range_query(np.array([2.0, 2.0]), np.array([3.0, 3.0]))
        assert got == []

    def test_metered_window_charges_io(self):
        pts = independent(200, 2, seed=6).points
        store = PageStore()
        tree = RStarTree(2, store=store, leaf_capacity=8, internal_capacity=8)
        for rid, p in enumerate(pts):
            tree.insert(p, rid)
        store.reset_meter()
        tree.range_query(np.zeros(2), np.ones(2), metered=True)
        assert store.stats.page_reads > 0


class TestDeletion:
    def test_delete_existing(self):
        pts = independent(150, 2, seed=7).points
        tree = build_by_insertion(pts, leaf_capacity=6, internal_capacity=6)
        assert tree.delete(pts[42], 42)
        assert tree.size == 149
        assert 42 not in tree.range_query(np.zeros(2), np.ones(2))
        tree.validate()

    def test_delete_missing_returns_false(self):
        pts = independent(50, 2, seed=8).points
        tree = build_by_insertion(pts, leaf_capacity=6, internal_capacity=6)
        assert not tree.delete(np.array([0.123, 0.456]), 9999)
        assert tree.size == 50

    def test_delete_all(self):
        pts = independent(80, 2, seed=9).points
        tree = build_by_insertion(pts, leaf_capacity=5, internal_capacity=5)
        for rid, p in enumerate(pts):
            assert tree.delete(p, rid)
        assert tree.size == 0
        assert tree.range_query(np.zeros(2), np.ones(2)) == []

    def test_delete_then_reinsert(self):
        pts = independent(120, 3, seed=10).points
        tree = build_by_insertion(pts, leaf_capacity=6, internal_capacity=6)
        for rid in range(0, 60):
            tree.delete(pts[rid], rid)
        for rid in range(0, 60):
            tree.insert(pts[rid], rid)
        assert tree.size == 120
        tree.validate()
        assert sorted(tree.range_query(np.zeros(3), np.ones(3))) == list(range(120))


class TestStructure:
    def test_parent_mbbs_tight(self):
        pts = independent(300, 2, seed=11).points
        tree = build_by_insertion(pts, leaf_capacity=8, internal_capacity=8)
        tree.validate()  # includes tight-MBB assertion

    def test_height_grows_logarithmically(self):
        pts = independent(1000, 2, seed=12).points
        tree = build_by_insertion(pts, leaf_capacity=16, internal_capacity=16)
        assert tree.height <= 5

    def test_fetch_is_metered(self):
        store = PageStore()
        tree = RStarTree(2, store=store)
        tree.insert(np.array([0.1, 0.2]), 0)
        store.reset_meter()
        tree.fetch(tree.root_id)
        assert store.stats.page_reads == 1


class TestRangeQueryDegenerate:
    def test_duplicated_coordinates_zero_volume_mbbs(self):
        """Regression: descent used `overlap > 0`, which skips axis-flat
        subtree MBBs produced by duplicated coordinate values."""
        rng = np.random.default_rng(21)
        pts = rng.random((300, 2))
        pts[:, 0] = np.round(pts[:, 0] * 4) / 4  # five distinct x values
        tree = build_by_insertion(pts, leaf_capacity=4, internal_capacity=4)
        for lo, hi in [
            ((0.25, 0.2), (0.25, 0.9)),  # zero-width window on a flat axis
            ((0.2, 0.2), (0.5, 0.5)),
            ((0.0, 0.0), (1.0, 1.0)),
        ]:
            lo, hi = np.array(lo), np.array(hi)
            expected = {
                i for i, p in enumerate(pts) if (p >= lo).all() and (p <= hi).all()
            }
            assert set(tree.range_query(lo, hi)) == expected

    def test_boundary_touching_window(self):
        """A window that only touches an MBB face must still descend."""
        pts = np.array([[0.2, 0.2], [0.2, 0.8], [0.8, 0.2], [0.8, 0.8], [0.5, 0.5]])
        tree = build_by_insertion(pts, leaf_capacity=4, internal_capacity=4)
        got = tree.range_query(np.array([0.8, 0.0]), np.array([1.0, 1.0]))
        assert sorted(got) == [2, 3]


class TestDeleteHeavyStress:
    @pytest.mark.parametrize("caps", [(8, 8), (6, 5)])
    def test_validate_after_every_deletion(self, caps):
        """Condense-tree must never drop orphaned entries: every structural
        invariant (including the size == indexed-points count) holds after
        each of 250 deletions in random order."""
        rng = np.random.default_rng(33)
        pts = rng.random((250, 3))
        tree = build_by_insertion(pts, leaf_capacity=caps[0], internal_capacity=caps[1])
        for rid in rng.permutation(250):
            assert tree.delete(pts[rid], int(rid))
            tree.validate()
        assert tree.size == 0

    def test_duplicated_coordinates_delete_stress(self):
        rng = np.random.default_rng(34)
        pts = rng.random((200, 2))
        pts[:, 0] = np.round(pts[:, 0] * 3) / 3
        tree = build_by_insertion(pts, leaf_capacity=8, internal_capacity=8)
        for rid in rng.permutation(200):
            assert tree.delete(pts[rid], int(rid))
            tree.validate()
            remaining = tree.range_query(np.zeros(2), np.ones(2))
            assert len(remaining) == tree.size

    def test_orphan_at_root_level_is_reinserted(self):
        """An orphaned subtree entry whose level equals the root's must be
        appended into the root, not silently discarded (the old guard
        dropped exactly this case)."""
        from repro.index.mbb import MBB
        from repro.index.node import NodeEntry, Node

        rng = np.random.default_rng(35)
        pts = rng.random((120, 2))
        tree = build_by_insertion(pts, leaf_capacity=8, internal_capacity=8)
        root_level = tree.root().level
        assert root_level >= 1
        # Build a level-correct sibling subtree whose top sits one level
        # below the root, and reinsert its entry at the root's own level.
        extra = rng.random((6, 2))
        leaf = Node(tree.store.allocate(), level=0)
        for i, p in enumerate(extra):
            leaf.entries.append(NodeEntry(MBB.of_point(p), 200 + i))
        tree.store.write(leaf)
        top = leaf
        for level in range(1, root_level):
            wrap = Node(
                tree.store.allocate(),
                level=level,
                entries=[NodeEntry(top.mbb(), top.node_id)],
            )
            tree.store.write(wrap)
            top = wrap
        entry = NodeEntry(top.mbb(), top.node_id)
        tree._reinserted_levels = set()
        tree._pending = [(entry, root_level)]
        while tree._pending:
            pending_entry, lvl = tree._pending.pop()
            tree._insert_at_level(pending_entry, lvl)
        tree.size += 6
        tree.validate(check_fill=False)  # single-entry wraps are underfull
        found = tree.range_query(np.zeros(2), np.ones(2))
        assert len(found) == 126
        assert {200 + i for i in range(6)} <= set(found)


class TestMutationCounter:
    def test_counts_inserts_and_deletes(self):
        rng = np.random.default_rng(36)
        pts = rng.random((40, 2))
        tree = RStarTree(2, leaf_capacity=6, internal_capacity=6)
        assert tree.mutations == 0
        for rid, p in enumerate(pts):
            tree.insert(p, rid)
        assert tree.mutations == 40
        assert tree.delete(pts[0], 0)
        assert tree.mutations == 41
        # A failed delete is not a structural mutation.
        assert not tree.delete(np.array([0.5, 0.5]), 9999)
        assert tree.mutations == 41
