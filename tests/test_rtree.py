"""Tests for the dynamic R*-tree."""

import numpy as np
import pytest

from repro.data.synthetic import independent
from repro.index.rtree import RStarTree
from repro.index.storage import PageStore


def build_by_insertion(points: np.ndarray, **kwargs) -> RStarTree:
    tree = RStarTree(points.shape[1], **kwargs)
    for rid, p in enumerate(points):
        tree.insert(p, rid)
    return tree


class TestInsertion:
    def test_single_insert(self):
        tree = RStarTree(2)
        tree.insert(np.array([0.5, 0.5]), 0)
        assert tree.size == 1
        tree.validate()

    def test_many_inserts_validate(self):
        pts = independent(500, 2, seed=1).points
        tree = build_by_insertion(pts, leaf_capacity=8, internal_capacity=8)
        assert tree.size == 500
        assert tree.height >= 3
        tree.validate()

    def test_inserts_3d(self):
        pts = independent(300, 3, seed=2).points
        tree = build_by_insertion(pts, leaf_capacity=6, internal_capacity=6)
        tree.validate()

    def test_all_points_findable(self):
        pts = independent(200, 2, seed=3).points
        tree = build_by_insertion(pts, leaf_capacity=8, internal_capacity=8)
        found = sorted(tree.range_query(np.zeros(2), np.ones(2)))
        assert found == list(range(200))

    def test_wrong_dimension_rejected(self):
        tree = RStarTree(3)
        with pytest.raises(ValueError):
            tree.insert(np.array([0.5, 0.5]), 0)

    def test_duplicate_points_allowed(self):
        tree = RStarTree(2, leaf_capacity=4, internal_capacity=4)
        for rid in range(20):
            tree.insert(np.array([0.5, 0.5]), rid)
        assert tree.size == 20
        tree.validate()

    def test_capacity_too_small_rejected(self):
        with pytest.raises(ValueError):
            RStarTree(2, leaf_capacity=1)


class TestRangeQuery:
    def test_window(self):
        pts = independent(400, 2, seed=4).points
        tree = build_by_insertion(pts, leaf_capacity=8, internal_capacity=8)
        lo, hi = np.array([0.2, 0.3]), np.array([0.6, 0.7])
        expected = {
            i for i, p in enumerate(pts) if (p >= lo).all() and (p <= hi).all()
        }
        assert set(tree.range_query(lo, hi)) == expected

    def test_empty_window(self):
        pts = independent(100, 2, seed=5).points
        tree = build_by_insertion(pts, leaf_capacity=8, internal_capacity=8)
        got = tree.range_query(np.array([2.0, 2.0]), np.array([3.0, 3.0]))
        assert got == []

    def test_metered_window_charges_io(self):
        pts = independent(200, 2, seed=6).points
        store = PageStore()
        tree = RStarTree(2, store=store, leaf_capacity=8, internal_capacity=8)
        for rid, p in enumerate(pts):
            tree.insert(p, rid)
        store.reset_meter()
        tree.range_query(np.zeros(2), np.ones(2), metered=True)
        assert store.stats.page_reads > 0


class TestDeletion:
    def test_delete_existing(self):
        pts = independent(150, 2, seed=7).points
        tree = build_by_insertion(pts, leaf_capacity=6, internal_capacity=6)
        assert tree.delete(pts[42], 42)
        assert tree.size == 149
        assert 42 not in tree.range_query(np.zeros(2), np.ones(2))
        tree.validate()

    def test_delete_missing_returns_false(self):
        pts = independent(50, 2, seed=8).points
        tree = build_by_insertion(pts, leaf_capacity=6, internal_capacity=6)
        assert not tree.delete(np.array([0.123, 0.456]), 9999)
        assert tree.size == 50

    def test_delete_all(self):
        pts = independent(80, 2, seed=9).points
        tree = build_by_insertion(pts, leaf_capacity=5, internal_capacity=5)
        for rid, p in enumerate(pts):
            assert tree.delete(p, rid)
        assert tree.size == 0
        assert tree.range_query(np.zeros(2), np.ones(2)) == []

    def test_delete_then_reinsert(self):
        pts = independent(120, 3, seed=10).points
        tree = build_by_insertion(pts, leaf_capacity=6, internal_capacity=6)
        for rid in range(0, 60):
            tree.delete(pts[rid], rid)
        for rid in range(0, 60):
            tree.insert(pts[rid], rid)
        assert tree.size == 120
        tree.validate()
        assert sorted(tree.range_query(np.zeros(3), np.ones(3))) == list(range(120))


class TestStructure:
    def test_parent_mbbs_tight(self):
        pts = independent(300, 2, seed=11).points
        tree = build_by_insertion(pts, leaf_capacity=8, internal_capacity=8)
        tree.validate()  # includes tight-MBB assertion

    def test_height_grows_logarithmically(self):
        pts = independent(1000, 2, seed=12).points
        tree = build_by_insertion(pts, leaf_capacity=16, internal_capacity=16)
        assert tree.height <= 5

    def test_fetch_is_metered(self):
        store = PageStore()
        tree = RStarTree(2, store=store)
        tree.insert(np.array([0.1, 0.2]), 0)
        store.reset_meter()
        tree.fetch(tree.root_id)
        assert store.stats.page_reads == 1
