"""Tests for the observability subsystem (`repro.obs`).

Covers the span/collector contract (nesting, balance, ring capacity,
atomic records, remote-context adoption, pool propagation), the metrics
registry (histogram percentiles, kind clashes, accounting crosschecks),
the exporters, and the two end-to-end properties the trace-smoke CI job
gates on:

* serving is **bit-identical** with tracing on vs off (the front door
  and a process-backed cluster both), and
* worker-process spans **stitch** under the router's trace ids through
  the wire protocol.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro import obs
from repro.cluster import ShardedGIREngine
from repro.data.synthetic import make_synthetic
from repro.engine import GIREngine, flash_crowd_workload, uniform_workload
from repro.index.bulkload import bulk_load_str
from repro.serve import ServeFront, replay_serial_check, run_serve_workload

D = 3
N = 400


@pytest.fixture(autouse=True)
def _tracing_off_after():
    """Every test leaves tracing disarmed with an empty collector."""
    yield
    obs.disable()
    obs.reset_collector()


@pytest.fixture(scope="module")
def data():
    return make_synthetic("IND", N, D, seed=7)


def fresh_engine(data) -> GIREngine:
    return GIREngine(data, bulk_load_str(data), cache_capacity=64)


class TestSpans:
    def test_nested_spans_share_trace_and_parent_chain(self):
        obs.reset_collector()
        obs.enable()
        with obs.span("outer") as outer:
            with obs.span("inner") as inner:
                assert inner.trace_id == outer.trace_id
                assert inner.parent_id == outer.span_id
        spans = obs.drain()
        assert [s.name for s in spans] == ["inner", "outer"]
        assert spans[1].parent_id is None

    def test_trace_always_roots_a_fresh_trace(self):
        obs.reset_collector()
        obs.enable()
        with obs.span("ambient"):
            with obs.trace("root") as root:
                assert root.parent_id is None
            with obs.span("child") as child:
                assert child.trace_id != root.trace_id
        assert len({s.trace_id for s in obs.drain()}) == 2

    def test_attrs_and_error_tagging(self):
        obs.reset_collector()
        obs.enable()
        with pytest.raises(ValueError):
            with obs.span("failing", k=10) as sp:
                sp.set("extra", "yes")
                raise ValueError("boom")
        (record,) = obs.drain()
        assert record.attrs == {"k": 10, "extra": "yes", "error": "ValueError"}
        assert obs.collector().balanced

    def test_balance_counters_and_drain_reset(self):
        obs.reset_collector()
        obs.enable()
        with obs.span("a"):
            pass
        handle = obs.begin_span("leaky")
        stats = obs.collector().stats()
        assert stats["started"] == 2 and stats["finished"] == 1
        assert not stats["balanced"]
        obs.end_span(handle)
        assert obs.collector().balanced
        obs.drain()
        stats = obs.collector().stats()
        assert stats == {
            "started": 0,
            "finished": 0,
            "dropped": 0,
            "absorbed": 0,
            "buffered": 0,
            "capacity": stats["capacity"],
            "balanced": True,
        }

    def test_ring_drops_oldest_beyond_capacity(self):
        default_capacity = obs.collector().capacity
        obs.enable(capacity=4)
        try:
            for i in range(7):
                with obs.trace(f"s{i}"):
                    pass
            stats = obs.collector().stats()
            assert stats["dropped"] == 3 and stats["buffered"] == 4
            names = [s.name for s in obs.drain()]
            assert names == ["s3", "s4", "s5", "s6"]
        finally:
            obs.enable(capacity=default_capacity)  # restore the ring size
            obs.disable()

    def test_record_span_is_atomic_and_parents_under_ambient(self):
        obs.reset_collector()
        obs.enable()
        with obs.span("parent") as parent:
            obs.record_span("queued", 1.0, 1.5, queue="ingress")
        spans = obs.drain()
        queued = next(s for s in spans if s.name == "queued")
        assert queued.parent_id == parent.span_id
        assert queued.dur_us == pytest.approx(0.5e6)
        assert queued.attrs == {"queue": "ingress"}
        assert obs.collector().balanced

    def test_record_span_explicit_context_and_rootless(self):
        obs.reset_collector()
        obs.enable()
        obs.record_span("remote", 0.0, 1.0, trace_ctx=("t-x", "s-x"))
        obs.record_span("orphan", 0.0, 1.0)
        remote, orphan = obs.drain()
        assert (remote.trace_id, remote.parent_id) == ("t-x", "s-x")
        assert orphan.parent_id is None and orphan.trace_id != "t-x"

    def test_use_trace_adopts_remote_parent(self):
        obs.reset_collector()
        obs.enable()
        with obs.use_trace("t-wire", "s-wire"):
            assert obs.current() == ("t-wire", "s-wire")
            with obs.span("worker.side") as sp:
                assert sp.trace_id == "t-wire"
                assert sp.parent_id == "s-wire"
        assert obs.current() is None

    def test_pool_submit_carries_context_to_pool_threads(self):
        obs.reset_collector()
        obs.enable()
        with ThreadPoolExecutor(max_workers=2) as pool:
            with obs.span("fanout") as fan:
                futures = [
                    obs.pool_submit(pool, obs.current) for _ in range(4)
                ]
                contexts = [f.result() for f in futures]
        assert contexts == [(fan.trace_id, fan.span_id)] * 4
        # plain submit does NOT carry it — the reason pool_submit exists
        with ThreadPoolExecutor(max_workers=1) as pool:
            with obs.span("fanout2"):
                assert pool.submit(obs.current).result() is None

    def test_absorb_merges_foreign_records_without_balance_impact(self):
        obs.reset_collector()
        obs.enable()
        payload = {
            "trace_id": "t-w",
            "span_id": "s-w1",
            "parent_id": "s-router",
            "name": "shard.worker",
            "t0_us": 1.0,
            "dur_us": 2.0,
            "pid": 99,
            "tid": 1,
            "attrs": {"shard": 0},
        }
        assert obs.absorb([payload]) == 1
        assert obs.collector().balanced
        (record,) = obs.drain()
        assert record.span_id == "s-w1" and record.pid == 99


class TestDisabledMode:
    def test_disabled_sites_are_inert(self):
        obs.disable()
        obs.reset_collector()
        assert obs.span("x") is obs.span("y") is obs.trace("z")
        assert obs.use_trace("t", "s") is obs.span("x")
        with obs.span("nothing") as sp:
            sp.set("ignored", 1)
        obs.record_span("nothing", 0.0, 1.0)
        assert obs.current() is None
        assert obs.drain() == []
        assert obs.collector().stats()["started"] == 0

    def test_overhead_probe_sanity(self):
        obs.disable()
        ns = obs.disabled_span_overhead_ns(iters=2_000)
        assert 0.0 <= ns < 100_000  # well under 0.1ms per disabled site
        obs.enable()
        with pytest.raises(RuntimeError):
            obs.disabled_span_overhead_ns()


class TestMetrics:
    def test_histogram_percentiles_and_summary(self):
        h = obs.Histogram("lat_ms", buckets=range(10, 101, 10))
        for v in range(1, 101):
            h.observe(float(v))
        assert h.count == 100 and h.mean == pytest.approx(50.5)
        assert 25.0 <= h.percentile(50) <= 50.0
        assert 50.0 < h.percentile(99) <= 100.0
        assert h.percentile(0) >= 0.0
        summary = h.to_dict()
        assert set(summary) == {
            "count", "total", "mean", "p50", "p95", "p99", "max",
        }
        assert summary["max"] == 100.0
        assert summary["p50"] <= summary["p95"] <= summary["p99"]

    def test_histogram_overflow_interpolates_to_max_seen(self):
        h = obs.Histogram("h", buckets=[1.0])
        h.observe(50.0)
        assert h.percentile(99) <= 50.0
        assert h.max_seen == 50.0

    def test_empty_histogram_is_all_zero(self):
        h = obs.Histogram("h")
        assert h.percentile(99) == 0.0 and h.mean == 0.0

    def test_registry_kind_clash_and_reregistration(self):
        registry = obs.MetricsRegistry()
        counter = registry.counter("requests")
        assert registry.counter("requests") is counter
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("requests")
        adopted = registry.register(obs.Histogram("wait_ms"))
        with pytest.raises(ValueError, match="already registered"):
            registry.register(obs.Histogram("wait_ms"))
        assert registry.get("wait_ms") is adopted

    def test_registry_values_and_callback_gauges(self):
        registry = obs.MetricsRegistry()
        registry.counter("n").inc(3)
        backing = {"depth": 7}
        registry.gauge("depth", fn=lambda: backing["depth"])
        assert registry.value("n") == 3
        assert registry.value("depth") == 7
        backing["depth"] = 9
        assert registry.value("depth") == 9  # live, not copied
        with pytest.raises(ValueError, match="callback-backed"):
            registry.get("depth").set(1.0)

    def test_serve_identities_crosscheck(self):
        registry = obs.MetricsRegistry()
        values = {
            "arrivals": 10, "admitted": 8, "rejected": 1, "shed": 1,
            "reads_served": 6, "writes_applied": 1, "errors": 1,
            "engine_requests": 4, "coalesced_served": 2,
        }
        for name, v in values.items():
            registry.gauge(f"serve_{name}").set(v)
        assert obs.crosscheck_serve_identities(registry) == {
            "admission": True, "completion": True, "provenance": True,
            "ok": True,
        }
        registry.get("serve_shed").set(5)  # break admission only
        verdict = obs.crosscheck_serve_identities(registry)
        assert not verdict["ok"] and not verdict["admission"]
        assert verdict["completion"] and verdict["provenance"]

    def test_cache_identities_crosscheck_against_live_cache(self, data):
        engine = fresh_engine(data)
        for request in uniform_workload(D, 30, k=5, rng=3):
            engine.topk(request.weights, request.k)
        registry = obs.MetricsRegistry()
        obs.bind_cache_stats(registry, engine.cache)
        verdict = obs.crosscheck_cache_identities(registry)
        assert verdict["ok"], verdict
        assert registry.value("cache_hits") == engine.cache.stats()["hits"]


class TestExporters:
    def _sample_spans(self):
        obs.reset_collector()
        obs.enable()
        with obs.trace("serve.request", k=5):
            with obs.span("engine.topk"):
                pass
        with obs.trace("serve.request"):
            pass
        spans = obs.drain()
        obs.disable()
        return spans

    def test_chrome_trace_shape(self):
        spans = self._sample_spans()
        doc = obs.chrome_trace(spans)
        assert doc["displayTimeUnit"] == "ms"
        assert len(doc["traceEvents"]) == 3
        event = doc["traceEvents"][0]
        assert event["ph"] == "X" and event["cat"] == "repro"
        assert {"name", "ts", "dur", "pid", "tid", "args"} <= set(event)
        assert event["args"]["trace_id"] == spans[0].trace_id

    def test_spans_by_trace_and_roots(self):
        spans = self._sample_spans()
        grouped = obs.spans_by_trace(spans)
        assert len(grouped) == 2
        big = next(recs for recs in grouped.values() if len(recs) == 2)
        roots = obs.trace_roots(big)
        assert [r.name for r in roots] == ["serve.request"]

    def test_explain_renders_indented_tree(self):
        spans = self._sample_spans()
        text = obs.explain(spans)
        lines = text.splitlines()
        assert lines[0].startswith("trace ")
        assert "serve.request" in lines[1] and "[k=5]" in lines[1]
        assert lines[2].lstrip().startswith("engine.topk")
        assert len(lines[2]) - len(lines[2].lstrip()) > (
            len(lines[1]) - len(lines[1].lstrip())
        )
        assert obs.explain([]) == "(no spans collected)"
        assert "no spans for trace" in obs.explain(spans, trace_id="missing")

    def test_prometheus_text_exposition(self):
        registry = obs.MetricsRegistry()
        registry.counter("reqs", help="requests").inc(5)
        hist = registry.histogram("lat", buckets=[1.0, 2.0])
        hist.observe(0.5)
        hist.observe(5.0)
        text = obs.prometheus_text(registry)
        assert "# HELP reqs requests" in text
        assert "# TYPE reqs counter" in text
        assert "reqs 5.0" in text
        assert "# TYPE lat histogram" in text
        assert 'lat_bucket{le="+Inf"} 2' in text
        assert "lat_count 2" in text


class TestServeTracing:
    def test_traced_serving_is_equivalent_and_stitched(self, data):
        workload = flash_crowd_workload(D, 60, k=8, rng=1)
        obs.reset_collector()
        obs.enable()
        try:

            async def go():
                front = ServeFront(fresh_engine(data))
                async with front:
                    report = await run_serve_workload(front, workload, 16)
                return front, report

            front, _report = asyncio.run(go())
        finally:
            obs.disable()
        collector_stats = obs.collector().stats()
        spans = obs.drain()
        verdict = replay_serial_check(front.log, fresh_engine(data))
        assert verdict["all_match"], verdict["examples"]
        assert collector_stats["balanced"]
        assert collector_stats["dropped"] == 0
        grouped = obs.spans_by_trace(spans)
        stitched = [
            tid
            for tid, recs in grouped.items()
            if any(r.name == "serve.request" for r in recs)
            and any(r.name.startswith("engine.") for r in recs)
        ]
        # every engine-bridged trace carries the request root
        assert stitched, sorted({r.name for r in spans})


class TestClusterTracing:
    @pytest.fixture(scope="class")
    def cluster_data(self):
        return make_synthetic("IND", 600, D, seed=11)

    def _answers(self, engine, requests):
        return [tuple(engine.topk(w, k).ids) for w, k in requests]

    def test_process_cluster_bit_identical_and_worker_spans_stitch(
        self, cluster_data
    ):
        rng = np.random.default_rng(5)
        requests = [
            (rng.random(D) + 0.05, 5 + (i % 3)) for i in range(12)
        ]

        def make_cluster():
            return ShardedGIREngine(
                cluster_data,
                shards=2,
                backend="process",
                parallel=True,
                cache_capacity=16,
                cluster_cache_capacity=16,
            )

        with make_cluster() as engine:
            baseline = self._answers(engine, requests)

        obs.reset_collector()
        obs.enable()
        try:
            with make_cluster() as engine:
                traced = self._answers(engine, requests)
                drained = engine.drain_worker_spans()
        finally:
            obs.disable()
        collector_stats = obs.collector().stats()
        spans = obs.drain()

        assert traced == baseline  # tracing must not change answers
        assert collector_stats["balanced"]
        assert drained["spans"] > 0 and drained["dropped"] == 0
        assert drained["started"] == drained["finished"]

        router_pid = spans[0].pid if spans else 0
        router_spans = [s for s in spans if s.pid == router_pid]
        worker_spans = [s for s in spans if s.pid != router_pid]
        assert worker_spans, "no worker-process spans came back"
        router_trace_ids = {s.trace_id for s in router_spans}
        known_span_ids = {s.span_id for s in spans}
        for ws in worker_spans:
            assert ws.trace_id in router_trace_ids
            assert ws.parent_id in known_span_ids
        names = {s.name for s in worker_spans}
        assert "shard.worker" in names
        assert any(n.startswith("engine.") for n in names)

    def test_trace_off_cluster_reports_no_spans(self, cluster_data):
        obs.disable()
        obs.reset_collector()
        with ShardedGIREngine(
            cluster_data, shards=2, backend="process", parallel=True
        ) as engine:
            engine.topk(np.array([0.4, 0.3, 0.3]), 5)
            drained = engine.drain_worker_spans()
        assert drained == {
            "spans": 0, "started": 0, "finished": 0, "dropped": 0,
        }
        assert obs.drain() == []
