"""Semantic tests: the GIR actually means what Definition 1 says.

Sampled query vectors inside the region must reproduce the exact ordered
top-k; vectors just outside a bounding facet must change the result in
exactly the way the facet's perturbation record predicts.
"""

import numpy as np
import pytest

from repro.core.gir import compute_gir
from repro.data.synthetic import independent
from repro.query.linear_scan import scan_topk
from tests.conftest import random_query


class TestInsideRegion:
    @pytest.mark.parametrize("method", ["sp", "cp", "fp"])
    def test_sampled_vectors_preserve_ordered_result(self, small_ind_4d, rng, method):
        data, tree = small_ind_4d
        q = random_query(rng, 4)
        gir = compute_gir(tree, data, q, 8, method=method)
        for q2 in gir.polytope.sample(40, rng):
            if (q2 <= 1e-9).all():
                continue  # origin vertex: all-zero weights rank nothing
            ref = scan_topk(data.points, q2, 8)
            assert ref.ids == gir.topk.ids, q2

    def test_inside_anti(self, small_anti_3d, rng):
        data, tree = small_anti_3d
        q = random_query(rng, 3)
        gir = compute_gir(tree, data, q, 5)
        for q2 in gir.polytope.sample(40, rng):
            if (q2 <= 1e-9).all():
                continue
            assert scan_topk(data.points, q2, 5).ids == gir.topk.ids

    def test_membership_check_equals_result_equality(self, small_ind_2d, rng):
        """contains(q') == (top-k at q' is identical) for random probes."""
        data, tree = small_ind_2d
        q = random_query(rng, 2)
        k = 5
        gir = compute_gir(tree, data, q, k)
        agree = 0
        for _ in range(300):
            probe = rng.random(2)
            if probe.max() <= 1e-9:
                continue
            same = scan_topk(data.points, probe, k).ids == gir.topk.ids
            inside = gir.contains(probe, tol=1e-12)
            # Probes on the boundary (within fp tolerance) may disagree;
            # require agreement for clearly interior/exterior probes.
            slack = gir.polytope.slacks(probe).min()
            if abs(slack) > 1e-9:
                assert same == inside, (probe, slack)
                agree += 1
        assert agree > 200  # the probe set was not degenerate


class TestMaximality:
    """The GIR is the *maximal* preserving locus: stepping just outside any
    bounding facet must change the result."""

    @pytest.mark.parametrize("method", ["sp", "cp", "fp"])
    def test_crossing_facets_changes_result(self, small_ind_2d, rng, method):
        data, tree = small_ind_2d
        q = random_query(rng, 2)
        k = 5
        gir = compute_gir(tree, data, q, k, method=method)
        centre, radius = gir.polytope.chebyshev_center()
        assert radius > 0
        mask = gir.polytope.facet_mask()
        for row, hs in gir.halfspace_rows():
            if not mask[row]:
                continue
            # Walk from the centre through the facet to just outside it.
            a, b = gir.polytope.A[row], gir.polytope.b[row]
            direction = a / np.linalg.norm(a) ** 2
            t_hit = (b - a @ centre) / (a @ direction)
            outside = centre + direction * t_hit * (1 + 1e-6)
            if (outside < 0).any() or (outside > 1).any():
                continue
            got = scan_topk(data.points, outside, k).ids
            assert got != gir.topk.ids, f"facet {hs.describe()} not binding"
