"""Worked examples lifted directly from the paper's figures.

These pin the implementation to the paper's own numbers: the Figure 3
running example (Phase-1 half-planes) and the Figure 2 setting (wedge
GIRs in 2-d query space).
"""

import numpy as np
import pytest

from repro.baselines.exhaustive import exhaustive_gir
from repro.core.gir import compute_gir
from repro.core.phase1 import phase1_halfspaces
from repro.data.dataset import Dataset
from repro.index.bulkload import bulk_load_str
from repro.query.linear_scan import scan_topk

# Figure 3(a): the four result records of the running example.
P1, P2, P3, P4 = [0.54, 0.5], [0.5, 0.48], [0.52, 0.35], [0.4, 0.4]


@pytest.fixture(scope="module")
def figure3_dataset():
    """The paper's four result records plus low-scoring fillers, so that
    p1..p4 are exactly the top-4 under q = (0.4, 0.6)."""
    rng = np.random.default_rng(0)
    fillers = rng.random((60, 2)) * 0.35  # all score below p4's 0.4
    pts = np.vstack([[P1, P2, P3, P4], fillers])
    return Dataset(pts, name="figure3")


class TestFigure3:
    Q = np.array([0.4, 0.6])

    def test_scores_match_paper_table(self, figure3_dataset):
        res = scan_topk(figure3_dataset.points, self.Q, 4)
        assert res.ids == (0, 1, 2, 3)
        assert res.scores == pytest.approx((0.516, 0.488, 0.418, 0.4))

    def test_phase1_halfplanes_match_paper(self, figure3_dataset):
        res = scan_topk(figure3_dataset.points, self.Q, 4)
        hs = phase1_halfspaces(res, figure3_dataset.points)
        # 0.04 w1 + 0.02 w2 >= 0 ; -0.02 w1 + 0.13 w2 >= 0 ; 0.12 w1 - 0.05 w2 >= 0
        assert np.allclose(hs[0].normal, [0.04, 0.02])
        assert np.allclose(hs[1].normal, [-0.02, 0.13])
        assert np.allclose(hs[2].normal, [0.12, -0.05])

    def test_interim_region_semantics(self, figure3_dataset):
        """Any vector satisfying the three half-planes keeps p1..p4 ordered."""
        res = scan_topk(figure3_dataset.points, self.Q, 4)
        hs = phase1_halfspaces(res, figure3_dataset.points)
        rng = np.random.default_rng(1)
        pts = figure3_dataset.points
        for _ in range(300):
            q2 = rng.random(2)
            if q2.max() <= 1e-9:
                continue
            inside = all(h.satisfied(q2, tol=-1e-12) and h.slack(q2) > 1e-9 for h in hs)
            scores = pts[:4] @ q2
            ordered = bool(
                scores[0] > scores[1] > scores[2] > scores[3]
            )
            if inside:
                assert ordered, q2

    def test_full_gir_on_figure3_data(self, figure3_dataset):
        tree = bulk_load_str(figure3_dataset)
        for method in ("sp", "cp", "fp"):
            gir = compute_gir(tree, figure3_dataset, self.Q, 4, method=method)
            assert gir.topk.ids == (0, 1, 2, 3)
            oracle = exhaustive_gir(figure3_dataset, self.Q, 4)
            assert gir.volume() == pytest.approx(oracle.volume(), rel=1e-9, abs=1e-15)


class TestFigure2Setting:
    """2-d query space: the GIR is a wedge-like region containing q, and a
    scaled-down copy of q (same direction) preserves the result — the
    paper's q' = q/2 observation, which holds because every bounding
    hyperplane passes through the origin."""

    def test_scaled_query_inside_gir(self, rng):
        data = Dataset(np.random.default_rng(3).random((400, 2)), name="fig2")
        tree = bulk_load_str(data)
        q = np.array([0.6, 0.5])
        gir = compute_gir(tree, data, q, 10)
        for scale in (0.5, 0.25, 0.9):
            assert gir.contains(q * scale), scale
            assert scan_topk(data.points, q * scale, 10).ids == gir.topk.ids

    def test_gir_is_a_cone_inside_the_box(self, rng):
        """Membership is scale-invariant for any interior point (until the
        unit box clips it)."""
        data = Dataset(np.random.default_rng(5).random((300, 2)), name="cone")
        tree = bulk_load_str(data)
        q = np.array([0.55, 0.45])
        gir = compute_gir(tree, data, q, 5)
        samples = gir.polytope.sample(15, np.random.default_rng(7))
        for s in samples:
            for t in (0.3, 0.7):
                assert gir.contains(s * t)
