"""Property-based tests (hypothesis) on the core invariants.

These drive randomly generated datasets and queries through the full
pipeline and assert the paper's structural invariants hold universally:

* BRS ≡ full-scan top-k; BBS ≡ full-scan skyline;
* SP ≡ CP ≡ FP ≡ exhaustive (volumes and mutual containment);
* GIR ⊆ GIR*; STB ball ⊆ GIR; q ∈ GIR;
* dominance-pruning soundness on the skyline operator.
"""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines.exhaustive import exhaustive_gir
from repro.baselines.stb import stb_radius
from repro.core.gir import compute_gir
from repro.core.gir_star import compute_gir_star
from repro.data.dataset import Dataset
from repro.geometry.predicates import dominates
from repro.index.bulkload import bulk_load_str
from repro.query.bbs import skyline_of_points
from repro.query.brs import brs_topk
from repro.query.linear_scan import scan_skyline, scan_topk

SETTINGS = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@st.composite
def dataset_and_query(draw, min_n=30, max_n=150, min_d=2, max_d=4):
    seed = draw(st.integers(0, 2**31 - 1))
    n = draw(st.integers(min_n, max_n))
    d = draw(st.integers(min_d, max_d))
    k = draw(st.integers(1, min(10, n - 1)))
    rng = np.random.default_rng(seed)
    points = rng.random((n, d))
    weights = rng.random(d) * 0.9 + 0.05
    return points, weights, k


class TestQueryProperties:
    @given(dataset_and_query())
    @SETTINGS
    def test_brs_equals_scan(self, case):
        points, weights, k = case
        data = Dataset(points)
        tree = bulk_load_str(data)
        run = brs_topk(tree, points, weights, k, metered=False)
        assert run.result.ids == scan_topk(points, weights, k).ids

    @given(st.integers(0, 2**31 - 1), st.integers(20, 120), st.integers(2, 5))
    @SETTINGS
    def test_skyline_sound_and_complete(self, seed, n, d):
        rng = np.random.default_rng(seed)
        points = rng.random((n, d))
        sky = set(skyline_of_points(points, list(range(n))))
        assert sky == scan_skyline(points)
        # Soundness: no skyline member dominates another.
        members = sorted(sky)
        for i in members:
            for j in members:
                if i != j:
                    assert not dominates(points[i], points[j])
        # Completeness: every non-member is dominated by some member.
        for i in range(n):
            if i not in sky:
                assert any(dominates(points[m], points[i]) for m in members)

    @given(dataset_and_query(max_n=80))
    @SETTINGS
    def test_kth_score_bounds_all_nonresult(self, case):
        points, weights, k = case
        res = scan_topk(points, weights, k)
        others = [i for i in range(len(points)) if i not in res.ids]
        if others:
            assert res.kth_score >= (points[others] @ weights).max() - 1e-12


class TestGIRProperties:
    @given(dataset_and_query(max_n=100, max_d=3))
    @SETTINGS
    def test_methods_equal_oracle(self, case):
        points, weights, k = case
        data = Dataset(points)
        tree = bulk_load_str(data)
        oracle = exhaustive_gir(data, weights, k)
        vol_oracle = oracle.volume()
        for method in ("sp", "cp", "fp"):
            gir = compute_gir(tree, data, weights, k, method=method, metered=False)
            assert gir.topk.ids == oracle.topk.ids
            vol = gir.volume()
            assert abs(vol - vol_oracle) <= 1e-12 + 1e-6 * max(vol, vol_oracle)
            assert gir.contains(weights)

    @given(dataset_and_query(max_n=80, max_d=3))
    @SETTINGS
    def test_gir_subset_of_gir_star(self, case):
        points, weights, k = case
        data = Dataset(points)
        tree = bulk_load_str(data)
        gir = compute_gir(tree, data, weights, k, metered=False)
        star = compute_gir_star(tree, data, weights, k, metered=False)
        assert star.polytope.contains_polytope(gir.polytope)

    @given(dataset_and_query(max_n=80, max_d=3))
    @SETTINGS
    def test_stb_ball_inside_gir(self, case):
        points, weights, k = case
        data = Dataset(points)
        r = stb_radius(data, weights, k)
        oracle = exhaustive_gir(data, weights, k)
        # Points at distance < r from q stay inside the GIR polytope.
        rng = np.random.default_rng(1)
        for _ in range(10):
            v = rng.normal(size=points.shape[1])
            v /= np.linalg.norm(v)
            probe = weights + v * r * 0.99
            if ((probe >= 0) & (probe <= 1)).all():
                assert oracle.polytope.contains(probe, tol=1e-9)

    @given(dataset_and_query(max_n=60, max_d=3))
    @SETTINGS
    def test_sampled_interior_preserves_result(self, case):
        points, weights, k = case
        data = Dataset(points)
        tree = bulk_load_str(data)
        gir = compute_gir(tree, data, weights, k, metered=False)
        rng = np.random.default_rng(2)
        for q2 in gir.polytope.sample(5, rng):
            if (q2 <= 1e-9).all():
                continue
            assert scan_topk(points, q2, k).ids == gir.topk.ids
