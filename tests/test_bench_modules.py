"""Tests for the benchmark harness plumbing (config, reporting, metering)."""

import pytest

from repro.bench.config import SCALES, ExperimentScale
from repro.bench.metering import (
    MethodAggregate,
    measure_methods,
    prepare_tree,
    random_queries,
)
from repro.bench.reporting import fmt, format_table
from repro.data.synthetic import independent


class TestBenchFamilies:
    """The engine/update benchmarks accept the paper's COR/ANTI families,
    not just IND (scenario diversity of the committed reports)."""

    def test_update_benchmark_on_correlated_family(self, tmp_path):
        from repro.bench.engine_bench import (
            UpdateBenchConfig,
            run_update_benchmark,
        )

        config = UpdateBenchConfig(
            n=500, d=2, k=5, ops=20, family="COR", ground_truth_probes=1
        )
        payload = run_update_benchmark(config, tmp_path / "upd.json")
        assert payload["config"]["family"] == "COR"
        assert payload["policies"]["gir"]["ground_truth_mismatches"] == 0
        assert payload["policies"]["flush"]["ground_truth_mismatches"] == 0

    def test_unknown_family_rejected(self):
        from repro.bench.engine_bench import (
            EngineBenchConfig,
            run_engine_benchmark,
        )

        with pytest.raises(ValueError, match="unknown synthetic family"):
            run_engine_benchmark(EngineBenchConfig(n=100, family="nope"))


class TestConfig:
    def test_all_scales_well_formed(self):
        for name, scale in SCALES.items():
            assert scale.name == name
            assert scale.n_default > 0
            assert len(scale.n_sweep) >= 3
            assert scale.d_sweep[0] == 2
            assert scale.k_default in range(1, 101)

    def test_scales_ordered_by_size(self):
        assert (
            SCALES["smoke"].n_default
            < SCALES["bench"].n_default
            < SCALES["default"].n_default
            < SCALES["paper"].n_default
        )

    def test_paper_scale_matches_table2(self):
        paper = SCALES["paper"]
        assert paper.n_default == 1_000_000
        assert paper.d_sweep == (2, 3, 4, 5, 6, 7, 8)
        assert paper.k_sweep == (5, 10, 20, 50, 100)
        assert paper.k_default == 20
        assert paper.queries == 100
        assert paper.house_n == 315_265
        assert paper.hotel_n == 418_843

    def test_rejects_bad_scale(self):
        with pytest.raises(ValueError):
            ExperimentScale(
                name="bad", n_default=0, n_sweep=(1,), d_sweep=(2,),
                d_cap_cp=2, k_sweep=(5,), k_default=5, house_n=1, hotel_n=1,
                queries=1,
            )


class TestReporting:
    def test_fmt_scientific_extremes(self):
        assert fmt(1.5e-7) == "1.500e-07"
        assert fmt(2.0e9) == "2.000e+09"

    def test_fmt_plain_numbers(self):
        assert fmt(3.14159) == "3.142"
        assert fmt(42) == "42"
        assert fmt(0.0) == "0"

    def test_fmt_nan(self):
        assert fmt(float("nan")) == "nan"

    def test_table_alignment(self):
        text = format_table("T", ["a", "bbb"], [[1, 2.5], [10, 0.25]])
        lines = text.splitlines()
        assert lines[0] == "T"
        widths = {len(line) for line in lines[2:]}
        assert len(widths) == 1  # all rows aligned

    def test_empty_rows(self):
        text = format_table("T", ["x"], [])
        assert "x" in text


class TestMetering:
    def test_measure_methods_aggregates(self, rng):
        data = independent(2_000, 3, seed=99)
        tree = prepare_tree(data)
        queries = random_queries(rng, 3, 3)
        agg = measure_methods(data, tree, 5, ("sp", "fp"), queries)
        assert set(agg) == {"sp", "fp"}
        for m, a in agg.items():
            assert isinstance(a, MethodAggregate)
            assert a.cpu_ms >= 0
            assert a.io_pages >= 0
            assert len(a.samples) == 3
        # FP considers no more candidates than SP.
        assert agg["fp"].candidates <= agg["sp"].candidates

    def test_random_queries_interior(self, rng):
        qs = random_queries(rng, 4, 10)
        for q in qs:
            assert (q >= 0.1).all() and (q <= 0.9).all()

    def test_star_mode(self, rng):
        data = independent(1_000, 2, seed=100)
        tree = prepare_tree(data)
        agg = measure_methods(
            data, tree, 5, ("fp",), random_queries(rng, 2, 2), star=True
        )
        assert agg["fp"].cpu_ms >= 0
