"""Tests for the byte-level page layout (node serialisation)."""

import numpy as np
import pytest

from repro.data.synthetic import independent
from repro.index.bulkload import bulk_load_str
from repro.index.mbb import MBB
from repro.index.node import Node, NodeEntry, node_capacities
from repro.index.serde import PageOverflowError, decode_node, encode_node
from repro.index.storage import DEFAULT_PAGE_SIZE


def leaf_node(rng, d, count, node_id=7):
    node = Node(node_id, level=0)
    for i in range(count):
        node.entries.append(NodeEntry(MBB.of_point(rng.random(d)), i))
    return node


def internal_node(rng, d, count, node_id=9):
    node = Node(node_id, level=2)
    for i in range(count):
        lo = rng.random(d) * 0.5
        hi = lo + rng.random(d) * 0.5
        node.entries.append(NodeEntry(MBB(lo, hi), 100 + i))
    return node


class TestRoundTrip:
    @pytest.mark.parametrize("d", [2, 4, 6, 8])
    def test_leaf(self, rng, d):
        node = leaf_node(rng, d, 10)
        page = encode_node(node, DEFAULT_PAGE_SIZE, d)
        assert len(page) == DEFAULT_PAGE_SIZE
        back = decode_node(page, d)
        assert back.node_id == node.node_id
        assert back.level == 0
        assert len(back.entries) == 10
        for a, b in zip(node.entries, back.entries):
            assert a.child_id == b.child_id
            assert np.array_equal(a.mbb.lo, b.mbb.lo)

    @pytest.mark.parametrize("d", [2, 4, 6])
    def test_internal(self, rng, d):
        node = internal_node(rng, d, 8)
        back = decode_node(encode_node(node, DEFAULT_PAGE_SIZE, d), d)
        assert back.level == 2
        for a, b in zip(node.entries, back.entries):
            assert a.child_id == b.child_id
            assert np.array_equal(a.mbb.lo, b.mbb.lo)
            assert np.array_equal(a.mbb.hi, b.mbb.hi)

    def test_empty_node(self, rng):
        node = Node(3, level=0)
        back = decode_node(encode_node(node, DEFAULT_PAGE_SIZE, 4), 4)
        assert back.entries == []

    def test_magic_validated(self, rng):
        page = bytearray(encode_node(leaf_node(rng, 2, 1), DEFAULT_PAGE_SIZE, 2))
        page[:4] = b"XXXX"
        with pytest.raises(ValueError, match="magic"):
            decode_node(bytes(page), 2)

    def test_version_validated(self, rng):
        page = bytearray(encode_node(leaf_node(rng, 2, 1), DEFAULT_PAGE_SIZE, 2))
        page[4] = 99
        with pytest.raises(ValueError, match="version"):
            decode_node(bytes(page), 2)


class TestCapacityMathIsReal:
    """node_capacities() must agree with what actually fits on a page."""

    @pytest.mark.parametrize("d", [2, 3, 4, 5, 6, 7, 8])
    def test_leaf_capacity_fits(self, rng, d):
        leaf_cap, _ = node_capacities(DEFAULT_PAGE_SIZE, d)
        node = leaf_node(rng, d, leaf_cap)
        encode_node(node, DEFAULT_PAGE_SIZE, d)  # must not raise

    @pytest.mark.parametrize("d", [2, 3, 4, 5, 6, 7, 8])
    def test_leaf_capacity_tight(self, rng, d):
        leaf_cap, _ = node_capacities(DEFAULT_PAGE_SIZE, d)
        node = leaf_node(rng, d, leaf_cap + 1)
        with pytest.raises(PageOverflowError):
            encode_node(node, DEFAULT_PAGE_SIZE, d)

    @pytest.mark.parametrize("d", [2, 4, 6, 8])
    def test_internal_capacity_fits_and_tight(self, rng, d):
        _, internal_cap = node_capacities(DEFAULT_PAGE_SIZE, d)
        encode_node(internal_node(rng, d, internal_cap), DEFAULT_PAGE_SIZE, d)
        with pytest.raises(PageOverflowError):
            encode_node(internal_node(rng, d, internal_cap + 1), DEFAULT_PAGE_SIZE, d)


class TestRoundTripProperty:
    """Randomized encode/decode round-trips across d and page sizes.

    For every (d, page size) cell, random leaf and internal nodes at
    random fill levels must survive the byte round-trip with their full
    payload — entry order, child ids, exact float64 coordinates.
    """

    PAGE_SIZES = [512, 1024, DEFAULT_PAGE_SIZE]

    @staticmethod
    def byte_fit(page_size: int, d: int, leaf: bool) -> int:
        """Entries that genuinely fit the page — NOT node_capacities(),
        which floors at 4 for degenerate (tiny page, large d) configs."""
        from repro.index.node import PAGE_HEADER_BYTES

        entry = 8 + 8 * d if leaf else 8 + 16 * d
        return (page_size - PAGE_HEADER_BYTES) // entry

    @pytest.mark.parametrize("page_size", PAGE_SIZES)
    @pytest.mark.parametrize("d", [2, 3, 5, 8])
    def test_leaf_round_trip(self, rng, d, page_size):
        leaf_cap = self.byte_fit(page_size, d, leaf=True)
        for _ in range(5):
            count = int(rng.integers(0, leaf_cap + 1))
            node = leaf_node(rng, d, count, node_id=int(rng.integers(1 << 30)))
            back = decode_node(encode_node(node, page_size, d), d)
            assert back.node_id == node.node_id
            assert back.level == node.level
            assert [e.child_id for e in back.entries] == [
                e.child_id for e in node.entries
            ]
            for a, b in zip(node.entries, back.entries):
                assert np.array_equal(a.mbb.lo, b.mbb.lo)
                assert np.array_equal(a.mbb.hi, b.mbb.hi)

    @pytest.mark.parametrize("page_size", PAGE_SIZES)
    @pytest.mark.parametrize("d", [2, 3, 5, 8])
    def test_internal_round_trip(self, rng, d, page_size):
        internal_cap = self.byte_fit(page_size, d, leaf=False)
        for _ in range(5):
            count = int(rng.integers(0, internal_cap + 1))
            node = internal_node(rng, d, count)
            back = decode_node(encode_node(node, page_size, d), d)
            assert back.level == node.level
            for a, b in zip(node.entries, back.entries):
                assert a.child_id == b.child_id
                assert np.array_equal(a.mbb.lo, b.mbb.lo)
                assert np.array_equal(a.mbb.hi, b.mbb.hi)


class TestOverflowBoundary:
    """The exact fit/overflow boundary of the page layout.

    The byte arithmetic is explicit: a leaf entry is ``8 + 8d`` bytes, an
    internal entry ``8 + 16d``, after a 32-byte header. The last entry
    that fits must encode; one more must raise ``PageOverflowError``
    naming the offender — at *every* page size, not only the default.
    """

    @pytest.mark.parametrize("page_size", [512, 1024, DEFAULT_PAGE_SIZE])
    @pytest.mark.parametrize("d", [2, 4, 8])
    def test_leaf_boundary_exact(self, rng, d, page_size):
        from repro.index.node import PAGE_HEADER_BYTES

        max_fit = (page_size - PAGE_HEADER_BYTES) // (8 + 8 * d)
        page = encode_node(leaf_node(rng, d, max_fit), page_size, d)
        assert len(page) == page_size
        with pytest.raises(PageOverflowError, match="bytes > page size"):
            encode_node(leaf_node(rng, d, max_fit + 1), page_size, d)

    @pytest.mark.parametrize("page_size", [512, DEFAULT_PAGE_SIZE])
    @pytest.mark.parametrize("d", [2, 4])
    def test_internal_boundary_exact(self, rng, d, page_size):
        from repro.index.node import PAGE_HEADER_BYTES

        max_fit = (page_size - PAGE_HEADER_BYTES) // (8 + 16 * d)
        encode_node(internal_node(rng, d, max_fit), page_size, d)
        with pytest.raises(PageOverflowError, match="bytes > page size"):
            encode_node(internal_node(rng, d, max_fit + 1), page_size, d)

    def test_overflow_error_is_a_value_error(self, rng):
        """Callers catching ValueError keep working (PageOverflowError
        subclasses it)."""
        node = leaf_node(rng, 8, 64)
        with pytest.raises(ValueError):
            encode_node(node, 512, 8)


class TestWholeTreeRoundTrip:
    def test_every_node_of_a_bulk_loaded_tree_serialises(self, rng):
        data = independent(3_000, 3, seed=33)
        tree = bulk_load_str(data)
        for node in tree.iter_nodes():
            back = decode_node(encode_node(node, DEFAULT_PAGE_SIZE, 3), 3)
            assert back.node_id == node.node_id
            assert len(back.entries) == len(node.entries)
