"""The central correctness property: SP ≡ CP ≡ FP ≡ exhaustive.

All three Phase-2 methods must produce the *same region* as the
straightforward full-scan half-space intersection of Section 3.3 — equality
is checked by mutual polytope containment (LP-based) and identical volumes.
"""

import numpy as np
import pytest

from repro.baselines.exhaustive import exhaustive_gir
from repro.core.gir import compute_gir
from repro.data.synthetic import independent
from repro.index.bulkload import bulk_load_str
from tests.conftest import random_query

METHODS = ["sp", "cp", "fp"]


def assert_same_region(a, b, msg=""):
    assert a.polytope.contains_polytope(b.polytope), f"{msg}: first ⊉ second"
    assert b.polytope.contains_polytope(a.polytope), f"{msg}: second ⊉ first"


@pytest.mark.parametrize("method", METHODS)
class TestAgainstOracle:
    def test_ind_2d(self, small_ind_2d, rng, method):
        data, tree = small_ind_2d
        for _ in range(3):
            q = random_query(rng, 2)
            gir = compute_gir(tree, data, q, 5, method=method)
            oracle = exhaustive_gir(data, q, 5)
            assert gir.topk.ids == oracle.topk.ids
            assert_same_region(gir, oracle, f"{method} 2d")

    def test_ind_4d(self, small_ind_4d, rng, method):
        data, tree = small_ind_4d
        for _ in range(3):
            q = random_query(rng, 4)
            gir = compute_gir(tree, data, q, 8, method=method)
            oracle = exhaustive_gir(data, q, 8)
            assert_same_region(gir, oracle, f"{method} 4d")

    def test_anti_3d(self, small_anti_3d, rng, method):
        data, tree = small_anti_3d
        q = random_query(rng, 3)
        gir = compute_gir(tree, data, q, 10, method=method)
        oracle = exhaustive_gir(data, q, 10)
        assert_same_region(gir, oracle, f"{method} anti")

    def test_cor_3d(self, small_cor_3d, rng, method):
        data, tree = small_cor_3d
        q = random_query(rng, 3)
        gir = compute_gir(tree, data, q, 10, method=method)
        oracle = exhaustive_gir(data, q, 10)
        assert_same_region(gir, oracle, f"{method} cor")

    def test_k1(self, small_ind_2d, rng, method):
        """k=1: no ordering constraints, pure separation."""
        data, tree = small_ind_2d
        q = random_query(rng, 2)
        gir = compute_gir(tree, data, q, 1, method=method)
        oracle = exhaustive_gir(data, q, 1)
        assert len([h for h in gir.halfspaces if h.kind == "order"]) == 0
        assert_same_region(gir, oracle, f"{method} k1")

    def test_5d(self, rng, method):
        data = independent(600, 5, seed=31)
        tree = bulk_load_str(data)
        q = random_query(rng, 5)
        gir = compute_gir(tree, data, q, 5, method=method)
        oracle = exhaustive_gir(data, q, 5)
        assert_same_region(gir, oracle, f"{method} 5d")

    def test_volume_matches_oracle(self, small_ind_4d, rng, method):
        data, tree = small_ind_4d
        q = random_query(rng, 4)
        gir = compute_gir(tree, data, q, 10, method=method)
        oracle = exhaustive_gir(data, q, 10)
        assert gir.volume() == pytest.approx(oracle.volume(), rel=1e-6, abs=1e-15)


class TestMethodsAgree:
    def test_pairwise_volume_equality(self, small_anti_3d, rng):
        data, tree = small_anti_3d
        for _ in range(4):
            q = random_query(rng, 3)
            vols = [
                compute_gir(tree, data, q, 5, method=m).volume() for m in METHODS
            ]
            assert max(vols) - min(vols) <= 1e-12 + 1e-6 * max(vols)

    def test_candidate_hierarchy(self, small_ind_4d, rng):
        """FP considers ⊆ CP considers ⊆ SP considers (Figures 6 & 8)."""
        data, tree = small_ind_4d
        q = random_query(rng, 4)
        sp = compute_gir(tree, data, q, 10, method="sp")
        cp = compute_gir(tree, data, q, 10, method="cp")
        fp = compute_gir(tree, data, q, 10, method="fp")
        assert set(cp_ids := [h.lower for h in cp.halfspaces if h.kind == "separation"]) <= set(
            h.lower for h in sp.halfspaces if h.kind == "separation"
        )
        assert fp.stats.phase2_candidates <= cp.stats.phase2_candidates
        assert cp.stats.phase2_candidates <= sp.stats.phase2_candidates

    def test_fp_io_at_most_sp(self, rng):
        """FP's Phase-2 I/O never exceeds SP's (Figure 15 shape)."""
        data = independent(8000, 3, seed=37)
        tree = bulk_load_str(data)
        q = random_query(rng, 3)
        sp = compute_gir(tree, data, q, 20, method="sp")
        fp = compute_gir(tree, data, q, 20, method="fp")
        assert fp.stats.io_pages_phase2 <= sp.stats.io_pages_phase2


class TestEdgeCases:
    def test_unknown_method(self, small_ind_2d):
        data, tree = small_ind_2d
        with pytest.raises(ValueError, match="unknown method"):
            compute_gir(tree, data, np.array([0.5, 0.5]), 5, method="xx")

    def test_k_equals_n_no_separation(self):
        data = independent(40, 2, seed=41)
        tree = bulk_load_str(data)
        q = np.array([0.6, 0.7])
        for m in METHODS:
            gir = compute_gir(tree, data, q, 40, method=m)
            assert all(h.kind != "separation" for h in gir.halfspaces)
            oracle = exhaustive_gir(data, q, 40)
            assert_same_region(gir, oracle, f"{m} k=n")

    def test_result_attached(self, small_ind_2d, rng):
        data, tree = small_ind_2d
        q = random_query(rng, 2)
        gir = compute_gir(tree, data, q, 5)
        assert len(gir.topk.ids) == 5
        assert gir.method == "fp"

    def test_query_always_inside_own_gir(self, small_ind_4d, rng):
        data, tree = small_ind_4d
        for _ in range(5):
            q = random_query(rng, 4)
            for m in METHODS:
                assert compute_gir(tree, data, q, 5, method=m).contains(q)

    def test_raw_array_accepted(self, small_ind_2d, rng):
        data, tree = small_ind_2d
        q = random_query(rng, 2)
        gir = compute_gir(tree, data.points, q, 5)
        assert gir.contains(q)

    def test_reuse_existing_run(self, small_ind_2d, rng):
        from repro.query.brs import brs_topk

        data, tree = small_ind_2d
        q = random_query(rng, 2)
        run = brs_topk(tree, data.points, q, 5)
        gir = compute_gir(tree, data, q, 5, run=run)
        assert gir.topk.ids == run.result.ids
