"""Batch-vs-scalar serving equivalence for the GIREngine.

The batched paths (`GIRCache.lookup_batch`, `GIREngine.topk_batch`, the
batch-aware workload runner) promise *byte-identical* responses and
hit/miss accounting to the per-request path — batching may only change how
the membership arithmetic is grouped, never what is served. These property
tests replay the same workload through both paths on twin engines and
compare everything observable.
"""

import numpy as np
import pytest

from repro.data.synthetic import independent
from repro.engine import (
    DeleteOp,
    GIREngine,
    InsertOp,
    Request,
    mixed_workload,
    op_batches,
    uniform_workload,
    zipf_clustered_workload,
)
from repro.index.bulkload import bulk_load_str
from tests.conftest import random_query


@pytest.fixture(scope="module")
def batch_setup():
    data = independent(900, 3, seed=47)
    return data


def make_workload(kind: str, seed: int):
    rng = np.random.default_rng(seed)
    if kind == "uniform":
        return uniform_workload(3, 50, k=6, rng=rng)
    if kind == "zipf":
        return zipf_clustered_workload(3, 70, k=8, clusters=4, rng=rng)
    if kind == "mixed":
        return mixed_workload(
            3, 70, base_n=900, k=5, update_fraction=0.25, rng=rng
        )
    raise ValueError(kind)


def assert_responses_identical(r1, r2):
    assert len(r1.responses) == len(r2.responses)
    for a, b in zip(r1.responses, r2.responses):
        assert a.ids == b.ids
        assert a.scores == b.scores
        assert a.source == b.source
        assert a.k == b.k
        assert a.pages_read == b.pages_read
        assert (a.weights == b.weights).all()


def stats_without_grid_instrumentation(engine):
    """Engine counters minus the grid probe instrumentation: the batch
    runner re-probes the unserved suffix after each miss insert, so the
    grid legitimately sees more (identical-answer) probes than the
    per-request path."""
    stats = dict(engine.stats())
    stats.pop("grid_probes", None)
    stats.pop("grid_negatives", None)
    return stats


class TestBatchEquivalence:
    @pytest.mark.parametrize("kind", ["uniform", "zipf", "mixed"])
    def test_batch_run_matches_sequential_run(self, batch_setup, kind):
        """Property: for uniform, Zipf-clustered and mixed read/write
        workloads, the batch-aware runner returns byte-identical responses
        and identical engine/cache counters to the per-request path."""
        data = batch_setup
        workload = make_workload(kind, seed=101)
        sequential = GIREngine(data, bulk_load_str(data))
        batched = GIREngine(data, bulk_load_str(data))
        r_seq = sequential.run(workload)
        r_bat = batched.run(workload, batch=True)
        assert_responses_identical(r_seq, r_bat)
        assert stats_without_grid_instrumentation(
            sequential
        ) == stats_without_grid_instrumentation(batched)
        # Update accounting (empty lists for read-only kinds) matches too.
        assert len(r_seq.updates) == len(r_bat.updates)
        for ua, ub in zip(r_seq.updates, r_bat.updates):
            assert (ua.kind, ua.rid, ua.evicted, ua.cache_entries) == (
                ub.kind, ub.rid, ub.evicted, ub.cache_entries,
            )
            assert (ua.prescreen_screened, ua.prescreen_lps) == (
                ub.prescreen_screened, ub.prescreen_lps,
            )

    def test_topk_batch_matches_individual_topk(self, batch_setup, rng):
        data = batch_setup
        reference = GIREngine(data, bulk_load_str(data))
        batched = GIREngine(data, bulk_load_str(data))
        requests = [
            Request(weights=random_query(rng, 3), k=int(k))
            for k in rng.integers(4, 12, size=30)
        ]
        individual = [reference.topk(r.weights, r.k) for r in requests]
        batch = batched.topk_batch(requests)
        assert [r.ids for r in individual] == [r.ids for r in batch]
        assert [r.scores for r in individual] == [r.scores for r in batch]
        assert [r.source for r in individual] == [r.source for r in batch]
        assert stats_without_grid_instrumentation(
            reference
        ) == stats_without_grid_instrumentation(batched)

    def test_miss_in_batch_serves_later_requests(self, batch_setup, rng):
        """A miss mid-batch caches its GIR; an identical later request in
        the *same* batch must already be a full hit — exactly as in the
        sequential path."""
        data = batch_setup
        engine = GIREngine(data, bulk_load_str(data))
        q = random_query(rng, 3)
        responses = engine.topk_batch(
            [Request(weights=q, k=8), Request(weights=q, k=8)]
        )
        assert responses[0].source == "computed"
        assert responses[1].source == "cache"
        assert responses[1].pages_read == 0
        assert responses[0].ids == responses[1].ids

    def test_partial_hit_in_batch_completed(self, batch_setup, rng):
        data = batch_setup
        engine = GIREngine(data, bulk_load_str(data))
        q = random_query(rng, 3)
        responses = engine.topk_batch(
            [Request(weights=q, k=5), Request(weights=q, k=12)]
        )
        assert responses[0].source == "computed"
        assert responses[1].source == "completed"
        assert len(responses[1].ids) == 12
        assert engine.resumed_completions == 1

    def test_empty_batch(self, batch_setup):
        engine = GIREngine(batch_setup, bulk_load_str(batch_setup))
        assert engine.topk_batch([]) == []

    def test_op_batches_groups_reads_and_isolates_updates(self):
        r = Request(weights=np.array([0.5, 0.5, 0.5]), k=5)
        ops = [r, r, InsertOp(point=np.array([0.1, 0.2, 0.3])), r,
               DeleteOp(rid=0), DeleteOp(rid=1)]
        groups = list(op_batches(ops))
        assert [g if not isinstance(g, list) else len(g) for g in groups] == [
            2, ops[2], 1, ops[4], ops[5],
        ]


class TestPrescreenReporting:
    def test_report_carries_prescreen_accounting(self, batch_setup):
        data = batch_setup
        workload = make_workload("mixed", seed=202)
        engine = GIREngine(data, bulk_load_str(data))
        report = engine.run(workload)
        assert report.prescreen_screened_total == sum(
            u.prescreen_screened for u in report.updates
        )
        assert report.prescreen_lps_total == sum(
            u.prescreen_lps for u in report.updates
        )
        # With a warm cache and inserts in the stream, the vectorized
        # prescreen must clear entries without LPs.
        assert report.prescreen_screened_total > 0
        payload = report.to_dict()
        assert payload["prescreen_screened"] == report.prescreen_screened_total
        assert payload["prescreen_lps"] == report.prescreen_lps_total
        stats = engine.stats()
        assert stats["prescreen_screened"] == report.prescreen_screened_total
        assert stats["prescreen_lps"] == report.prescreen_lps_total
        assert "prescreen" in report.summary()

    def test_flush_policy_reports_zero_prescreen(self, batch_setup):
        data = batch_setup
        engine = GIREngine(data, bulk_load_str(data), invalidation="flush")
        engine.topk(np.array([0.5, 0.6, 0.7]), 5)
        upd = engine.insert(np.array([0.9, 0.9, 0.9]))
        assert upd.prescreen_screened == 0 and upd.prescreen_lps == 0
        assert engine.stats()["prescreen_screened"] == 0
