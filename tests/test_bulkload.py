"""Tests for STR bulk loading."""

import numpy as np
import pytest

from repro.data.synthetic import independent
from repro.index.bulkload import bulk_load_str
from repro.index.rtree import RStarTree


class TestBulkLoad:
    def test_all_points_present(self):
        data = independent(777, 3, seed=1)
        tree = bulk_load_str(data)
        assert tree.size == 777
        found = sorted(tree.range_query(np.zeros(3), np.ones(3)))
        assert found == list(range(777))

    def test_structure_valid(self):
        data = independent(2000, 2, seed=2)
        tree = bulk_load_str(data)
        tree.validate(check_fill=False)

    def test_single_leaf_dataset(self):
        data = independent(5, 4, seed=3)
        tree = bulk_load_str(data)
        assert tree.height == 1
        assert tree.size == 5
        tree.validate(check_fill=False)

    def test_fill_factor_controls_leaf_count(self):
        data = independent(5000, 2, seed=4)
        loose = bulk_load_str(data, fill_factor=0.5)
        tight = bulk_load_str(data, fill_factor=1.0)
        loose_leaves = sum(1 for n in loose.iter_nodes() if n.is_leaf)
        tight_leaves = sum(1 for n in tight.iter_nodes() if n.is_leaf)
        assert loose_leaves > tight_leaves

    def test_rejects_bad_fill_factor(self):
        data = independent(10, 2, seed=5)
        with pytest.raises(ValueError):
            bulk_load_str(data, fill_factor=0.0)
        with pytest.raises(ValueError):
            bulk_load_str(data, fill_factor=1.5)

    def test_dynamic_insert_after_bulk_load(self):
        data = independent(1000, 2, seed=6)
        tree = bulk_load_str(data)
        tree.insert(np.array([0.123, 0.456]), 1000)
        assert tree.size == 1001
        assert 1000 in tree.range_query(np.array([0.12, 0.45]), np.array([0.13, 0.46]))

    def test_matches_insertion_built_semantics(self):
        """Bulk-loaded and insertion-built trees answer queries identically."""
        data = independent(400, 2, seed=7)
        bulk = bulk_load_str(data)
        dyn = RStarTree(2, leaf_capacity=16, internal_capacity=16)
        for rid, p in enumerate(data.points):
            dyn.insert(p, rid)
        lo, hi = np.array([0.1, 0.2]), np.array([0.5, 0.9])
        assert set(bulk.range_query(lo, hi)) == set(dyn.range_query(lo, hi))

    def test_leaf_level_zero_everywhere(self):
        data = independent(3000, 3, seed=8)
        tree = bulk_load_str(data)
        for node in tree.iter_nodes():
            if node.is_leaf:
                assert node.level == 0
