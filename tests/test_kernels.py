"""Kernels module: backend selection and compiled/fallback equivalence.

The numpy fallbacks are the reference semantics (byte-for-byte the
expressions the callers used inline before the module existed); the numba
variants must match them bit-for-bit on random inputs. Without numba in
the environment the jit half is skipped and the selection tests assert the
fallback wiring instead.
"""

import subprocess
import sys

import numpy as np
import pytest

from repro.core import kernels


@pytest.fixture
def rng():
    return np.random.default_rng(7)


def random_segments(rng, n_entries=20, d=4, max_rows=9):
    counts = rng.integers(1, max_rows, n_entries)
    offsets = np.concatenate(
        [np.zeros(1, dtype=np.int64), np.cumsum(counts, dtype=np.int64)]
    )
    rows = int(offsets[-1])
    A = rng.normal(size=(rows, d))
    b = rng.normal(size=rows)
    return A, b, offsets


class TestBackendSelection:
    def test_active_backend_consistent(self):
        assert kernels.ACTIVE_BACKEND in ("numpy", "numba")
        if kernels.NUMBA_AVAILABLE:
            assert kernels.ACTIVE_BACKEND == "numba"
            assert kernels.segmented_membership is not kernels.segmented_membership_numpy
        else:
            assert kernels.ACTIVE_BACKEND == "numpy"
            assert kernels.segmented_membership is kernels.segmented_membership_numpy

    def test_backend_info_shape(self):
        info = kernels.backend_info()
        assert info["active"] == kernels.ACTIVE_BACKEND
        assert info["numba_available"] == kernels.NUMBA_AVAILABLE
        assert info["jit_disabled_by_env"] == kernels.JIT_DISABLED_BY_ENV

    def test_repro_kernels_shim(self):
        import repro.kernels as shim

        assert shim.segmented_membership is kernels.segmented_membership
        assert shim.backend_info()["active"] == kernels.ACTIVE_BACKEND

    def test_no_jit_env_forces_numpy(self):
        """REPRO_NO_JIT=1 must select the numpy fallbacks in a fresh
        interpreter regardless of whether numba is installed."""
        out = subprocess.run(
            [
                sys.executable,
                "-c",
                "from repro.core import kernels; print(kernels.ACTIVE_BACKEND,"
                " kernels.JIT_DISABLED_BY_ENV)",
            ],
            env={"PYTHONPATH": "src", "REPRO_NO_JIT": "1"},
            capture_output=True,
            text=True,
            check=True,
        )
        assert out.stdout.split() == ["numpy", "True"]


class TestNumpyReferenceSemantics:
    """The fallbacks equal the inline expressions they replaced."""

    def test_segmented_membership(self, rng):
        A, b, offsets = random_segments(rng)
        x = rng.normal(size=A.shape[1])
        got = kernels.segmented_membership_numpy(A, b, offsets, x, 1e-9)
        ok = A @ x <= b + 1e-9
        np.testing.assert_array_equal(
            got, np.logical_and.reduceat(ok, offsets[:-1])
        )

    def test_segmented_membership_batch(self, rng):
        A, b, offsets = random_segments(rng)
        X = rng.normal(size=(13, A.shape[1]))
        got = kernels.segmented_membership_batch_numpy(A, b, offsets, X, 1e-9)
        ok = X @ A.T <= b + 1e-9
        np.testing.assert_array_equal(
            got, np.logical_and.reduceat(ok, offsets[:-1], axis=1)
        )

    def test_segmented_max(self, rng):
        _, values, offsets = random_segments(rng)
        got = kernels.segmented_max_numpy(values, offsets)
        np.testing.assert_array_equal(
            got, np.maximum.reduceat(values, offsets[:-1])
        )

    def test_fan_kernels(self, rng):
        normals = rng.normal(size=(11, 4))
        offsets = rng.normal(size=11)
        point = rng.normal(size=4)
        pts = rng.normal(size=(17, 4))
        eps = 1e-9
        np.testing.assert_array_equal(
            kernels.above_mask_numpy(normals, offsets, point, eps),
            normals @ point - offsets > eps,
        )
        np.testing.assert_array_equal(
            kernels.any_above_numpy(pts, normals, offsets, eps),
            (pts @ normals.T - offsets > eps).any(axis=1),
        )
        hi, lo = rng.normal(size=4) + 2.0, rng.normal(size=4) - 2.0
        pos, neg = np.maximum(normals, 0.0), np.minimum(normals, 0.0)
        assert kernels.box_any_above_numpy(pos, neg, offsets, hi, lo, eps) == bool(
            ((pos @ hi + neg @ lo) - offsets > eps).any()
        )
        apex = rng.normal(size=4)
        np.testing.assert_array_equal(
            kernels.dominated_mask_numpy(apex, pts),
            (apex >= pts).all(axis=1) & (apex > pts).any(axis=1),
        )


@pytest.mark.skipif(
    not kernels.NUMBA_AVAILABLE, reason="numba not installed"
)
class TestJitEquivalence:
    """Bit-equivalence between the compiled variants and the fallbacks."""

    def test_segmented_membership(self, rng):
        for _ in range(20):
            A, b, offsets = random_segments(rng)
            x = rng.normal(size=A.shape[1])
            tol = float(rng.choice([1e-12, 1e-9, 1e-6]))
            np.testing.assert_array_equal(
                kernels.segmented_membership_numba(A, b, offsets, x, tol),
                kernels.segmented_membership_numpy(A, b, offsets, x, tol),
            )
            X = rng.normal(size=(7, A.shape[1]))
            np.testing.assert_array_equal(
                kernels.segmented_membership_batch_numba(A, b, offsets, X, tol),
                kernels.segmented_membership_batch_numpy(A, b, offsets, X, tol),
            )

    def test_segmented_max(self, rng):
        for _ in range(20):
            _, values, offsets = random_segments(rng)
            np.testing.assert_array_equal(
                kernels.segmented_max_numba(values, offsets),
                kernels.segmented_max_numpy(values, offsets),
            )

    def test_fan_kernels(self, rng):
        for _ in range(20):
            normals = rng.normal(size=(9, 3))
            offsets = rng.normal(size=9)
            pts = rng.normal(size=(15, 3))
            point = rng.normal(size=3)
            eps = 1e-9
            np.testing.assert_array_equal(
                kernels.above_mask_numba(normals, offsets, point, eps),
                kernels.above_mask_numpy(normals, offsets, point, eps),
            )
            np.testing.assert_array_equal(
                kernels.any_above_numba(pts, normals, offsets, eps),
                kernels.any_above_numpy(pts, normals, offsets, eps),
            )
            hi, lo = point + 1.0, point - 1.0
            pos, neg = np.maximum(normals, 0.0), np.minimum(normals, 0.0)
            assert kernels.box_any_above_numba(
                pos, neg, offsets, hi, lo, eps
            ) == kernels.box_any_above_numpy(pos, neg, offsets, hi, lo, eps)
            np.testing.assert_array_equal(
                kernels.dominated_mask_numba(point, pts),
                kernels.dominated_mask_numpy(point, pts),
            )
