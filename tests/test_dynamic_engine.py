"""Tests for the dynamic GIREngine: updates, selective invalidation,
mixed workloads and the stale-run guard."""

import numpy as np
import pytest

from repro.data.dataset import PointTable
from repro.data.synthetic import independent
from repro.engine import (
    DeleteOp,
    GIREngine,
    InsertOp,
    Request,
    mixed_workload,
)
from repro.index.bulkload import bulk_load_str
from repro.query.linear_scan import scan_topk
from tests.conftest import random_query


@pytest.fixture()
def dyn_setup():
    data = independent(900, 3, seed=51)
    return data, bulk_load_str(data)


def live_truth(engine, weights, k):
    return scan_topk(
        engine.points, weights, k, scorer=engine.scorer, live=engine.table.live_mask
    )


class TestPointTable:
    def test_insert_assigns_sequential_rids(self):
        table = PointTable(np.full((3, 2), 0.5))
        assert table.insert(np.array([0.1, 0.2])) == 3
        assert table.insert(np.array([0.3, 0.4])) == 4
        assert table.n_allocated == 5 and table.n_live == 5
        assert np.allclose(table.point(4), [0.3, 0.4])

    def test_delete_tombstones_without_renumbering(self):
        table = PointTable(np.full((4, 2), 0.5))
        got = table.delete(1)
        assert np.allclose(got, [0.5, 0.5])
        assert not table.is_live(1) and table.n_live == 3
        assert table.n_allocated == 4  # rids stable
        assert sorted(table.live_ids()) == [0, 2, 3]
        with pytest.raises(KeyError):
            table.delete(1)  # already dead
        with pytest.raises(KeyError):
            table.delete(99)

    def test_growth_preserves_rows(self):
        rng = np.random.default_rng(3)
        initial = rng.random((5, 3))
        table = PointTable(initial)
        added = [rng.random(3) for _ in range(40)]
        for p in added:
            table.insert(p)
        assert np.allclose(table.rows[:5], initial)
        assert np.allclose(table.rows[5:], np.stack(added))

    def test_rows_view_is_read_only(self):
        table = PointTable(np.full((3, 2), 0.5))
        with pytest.raises(ValueError):
            table.rows[0, 0] = 0.9

    def test_rejects_out_of_cube_points(self):
        table = PointTable(np.full((3, 2), 0.5))
        with pytest.raises(ValueError):
            table.insert(np.array([1.5, 0.5]))


class TestDynamicCorrectness:
    def test_interleaved_updates_match_live_scan(self, dyn_setup):
        """After every update, served answers equal exhaustive linear-scan
        ground truth over the live records — whether they came from cache,
        a resumed run or a fresh pipeline."""
        data, tree = dyn_setup
        engine = GIREngine(data, tree, cache_capacity=24)
        rng = np.random.default_rng(8)
        for step in range(50):
            r = rng.random()
            if r < 0.25:
                engine.insert(rng.random(3))
            elif r < 0.40:
                live = engine.table.live_ids()
                engine.delete(int(rng.choice(live)))
            q = random_query(rng, 3)
            resp = engine.topk(q, 10)
            truth = live_truth(engine, q, 10)
            assert resp.ids == truth.ids, f"step {step} ({resp.source})"
            assert np.allclose(resp.scores, truth.scores)

    def test_insert_enters_topk_immediately(self, dyn_setup):
        data, tree = dyn_setup
        engine = GIREngine(data, tree)
        q = np.array([0.5, 0.5, 0.5])
        engine.topk(q, 5)  # warm the cache
        upd = engine.insert(np.array([0.99, 0.99, 0.99]))  # unbeatable point
        assert upd.kind == "insert" and upd.evicted >= 1
        resp = engine.topk(q, 5)
        assert resp.ids[0] == upd.rid
        assert resp.ids == live_truth(engine, q, 5).ids

    def test_deleted_record_leaves_topk_immediately(self, dyn_setup):
        data, tree = dyn_setup
        engine = GIREngine(data, tree)
        q = np.array([0.6, 0.4, 0.5])
        first = engine.topk(q, 5)
        upd = engine.delete(first.ids[0])
        assert upd.kind == "delete" and upd.evicted >= 1
        resp = engine.topk(q, 5)
        assert first.ids[0] not in resp.ids
        assert resp.ids == live_truth(engine, q, 5).ids

    def test_topk_rejects_k_above_live_count(self):
        data = independent(30, 2, seed=9)
        engine = GIREngine(data)
        engine.delete(0)
        with pytest.raises(ValueError, match="exceeds"):
            engine.topk(np.array([0.5, 0.5]), 30)


class TestSelectiveInvalidation:
    def test_harmless_insert_keeps_cache(self, dyn_setup):
        """A new record dominated by everything cannot enter any top-k:
        no cached entry may be evicted, and serving stays a pure hit."""
        data, tree = dyn_setup
        engine = GIREngine(data, tree)
        q = random_query(np.random.default_rng(5), 3)
        engine.topk(q, 10)
        upd = engine.insert(np.array([0.001, 0.001, 0.001]))
        assert upd.evicted == 0 and len(engine.cache) == 1
        resp = engine.topk(q, 10)
        assert resp.source == "cache" and resp.pages_read == 0
        assert resp.ids == live_truth(engine, q, 10).ids

    def test_threatening_insert_evicts(self, dyn_setup):
        data, tree = dyn_setup
        engine = GIREngine(data, tree)
        q = random_query(np.random.default_rng(6), 3)
        engine.topk(q, 10)
        upd = engine.insert(np.array([0.98, 0.98, 0.98]))
        assert upd.evicted == 1 and len(engine.cache) == 0

    def test_duplicate_of_kth_record_evicts(self, dyn_setup):
        """Regression: an inserted exact duplicate of a cached entry's k-th
        record ties its score at every query vector, and the (coord-sum,
        rid) tie-break ranks the fresher rid higher — the entry must be
        evicted, not kept serving the stale k-th rid."""
        data, tree = dyn_setup
        engine = GIREngine(data, tree)
        q = random_query(np.random.default_rng(19), 3)
        first = engine.topk(q, 10)
        upd = engine.insert(data.points[first.ids[-1]].copy())
        assert upd.evicted == 1
        resp = engine.topk(q, 10)
        assert resp.ids == live_truth(engine, q, 10).ids
        assert resp.ids[-1] == upd.rid  # the duplicate's fresh rid wins the tie

    def test_unrelated_delete_keeps_cache(self, dyn_setup):
        data, tree = dyn_setup
        engine = GIREngine(data, tree, retain_runs=False)
        q = random_query(np.random.default_rng(7), 3)
        first = engine.topk(q, 10)
        # A rid in neither the result nor any retained T-set.
        outsider = next(
            rid for rid in range(data.n) if rid not in first.ids
        )
        upd = engine.delete(outsider)
        assert upd.evicted == 0 and len(engine.cache) == 1
        resp = engine.topk(q, 10)
        assert resp.source == "cache"
        assert resp.ids == live_truth(engine, q, 10).ids

    def test_result_member_delete_evicts(self, dyn_setup):
        data, tree = dyn_setup
        engine = GIREngine(data, tree)
        q = random_query(np.random.default_rng(8), 3)
        first = engine.topk(q, 10)
        upd = engine.delete(first.ids[4])
        assert upd.evicted == 1 and len(engine.cache) == 0

    def test_tset_member_delete_evicts_when_run_retained(self, dyn_setup):
        data, tree = dyn_setup
        engine = GIREngine(data, tree, retain_runs=True)
        q = random_query(np.random.default_rng(9), 3)
        engine.topk(q, 10)
        (run,) = engine._runs.values()
        assert run.encountered, "test needs a non-empty T-set"
        victim = next(iter(run.encountered))
        upd = engine.delete(victim)
        assert upd.evicted == 1

    def test_flush_policy_evicts_everything(self, dyn_setup):
        data, tree = dyn_setup
        engine = GIREngine(data, tree, invalidation="flush")
        rng = np.random.default_rng(10)
        for _ in range(3):
            engine.topk(random_query(rng, 3), 8)
        entries_before = len(engine.cache)
        assert entries_before >= 1
        upd = engine.insert(np.array([0.001, 0.001, 0.001]))
        assert upd.evicted == entries_before  # even a harmless insert flushes
        assert len(engine.cache) == 0
        assert upd.policy == "flush"

    def test_gir_evicts_fewer_than_flush_on_zipf(self):
        """The acceptance bar: on the Zipf-clustered mixed workload the
        selective policy evicts strictly fewer entries than flush-on-write."""
        data = independent(700, 3, seed=60)
        wl = mixed_workload(
            3, 80, base_n=700, k=8, update_fraction=0.25,
            rng=np.random.default_rng(61),
        )
        reports = {}
        for policy in ("gir", "flush"):
            engine = GIREngine(
                data, bulk_load_str(data), cache_capacity=32, invalidation=policy
            )
            reports[policy] = engine.run(wl)
        assert reports["gir"].evictions_total < reports["flush"].evictions_total
        assert reports["gir"].updates_total == reports["flush"].updates_total

    def test_unknown_policy_rejected(self, dyn_setup):
        data, tree = dyn_setup
        with pytest.raises(ValueError, match="invalidation"):
            GIREngine(data, tree, invalidation="lazy")


class TestStaleRunGuard:
    def test_partial_hit_after_update_never_resumes(self, dyn_setup):
        """A mutation makes every retained BRS run stale; the next partial
        hit must fall back to a fresh search and still be exact."""
        data, tree = dyn_setup
        engine = GIREngine(data, tree)
        q = random_query(np.random.default_rng(11), 3)
        engine.topk(q, 5)
        engine.insert(np.array([0.001, 0.001, 0.001]))  # keeps the entry
        assert len(engine.cache) == 1
        deep = engine.topk(q, 14)
        assert deep.source == "completed"
        assert engine.resumed_completions == 0  # resume was forbidden
        assert deep.ids == live_truth(engine, q, 14).ids

    def test_partial_hit_without_update_still_resumes(self, dyn_setup):
        data, tree = dyn_setup
        engine = GIREngine(data, tree)
        q = random_query(np.random.default_rng(12), 3)
        engine.topk(q, 5)
        deep = engine.topk(q, 14)
        assert deep.source == "completed"
        assert engine.resumed_completions == 1
        assert deep.ids == live_truth(engine, q, 14).ids


class TestMixedWorkload:
    def test_generator_shapes_and_rid_contract(self):
        rng = np.random.default_rng(13)
        wl = mixed_workload(3, 200, base_n=500, k=6, update_fraction=0.3, rng=rng)
        assert len(wl) == 200
        assert wl.reads + wl.updates == 200
        assert 0 < wl.updates < 200
        next_rid = 500
        live = set(range(500))
        for op in wl:
            if isinstance(op, InsertOp):
                live.add(next_rid)
                next_rid += 1
            elif isinstance(op, DeleteOp):
                assert op.rid in live  # only live rids are deleted
                live.discard(op.rid)
        assert len(live) > 12  # never drained below 2k

    def test_update_fraction_roughly_respected(self):
        rng = np.random.default_rng(14)
        wl = mixed_workload(3, 1000, base_n=400, k=5, update_fraction=0.2, rng=rng)
        assert 0.12 <= wl.updates / len(wl) <= 0.30

    def test_zero_update_fraction_is_pure_reads(self):
        wl = mixed_workload(
            2, 50, base_n=100, k=5, update_fraction=0.0,
            rng=np.random.default_rng(15),
        )
        assert wl.updates == 0 and wl.reads == 50

    def test_rejects_bad_params(self):
        rng = np.random.default_rng(16)
        with pytest.raises(ValueError, match="update_fraction"):
            mixed_workload(2, 10, base_n=100, update_fraction=1.0, rng=rng)
        with pytest.raises(ValueError, match="base_n"):
            mixed_workload(2, 10, base_n=10, k=10, rng=rng)
        with pytest.raises(ValueError, match="read_kind"):
            mixed_workload(2, 10, base_n=100, read_kind="bursty", rng=rng)

    def test_engine_run_reports_update_accounting(self, dyn_setup):
        data, tree = dyn_setup
        engine = GIREngine(data, tree, cache_capacity=32)
        wl = mixed_workload(
            3, 60, base_n=data.n, k=8, update_fraction=0.25,
            rng=np.random.default_rng(17),
        )
        report = engine.run(wl)
        assert report.total == wl.reads
        assert report.updates_total == wl.updates
        assert report.inserts_applied + report.deletes_applied == wl.updates
        d = report.to_dict()
        for key in (
            "updates", "inserts", "deletes", "evictions",
            "update_latency_p50_ms", "update_latency_p95_ms",
        ):
            assert key in d
        assert "updates" in report.summary()
        stats = engine.stats()
        assert stats["updates_applied"] == wl.updates
        assert stats["update_evictions"] == report.evictions_total


class TestFrozenArrays:
    def test_request_weights_are_copied_and_frozen(self):
        buf = np.array([0.5, 0.6])
        req = Request(weights=buf, k=5)
        buf[0] = 0.0  # caller reuses its buffer
        assert req.weights[0] == 0.5
        with pytest.raises(ValueError):
            req.weights[0] = 0.9

    def test_insert_op_point_copied(self):
        buf = np.array([0.1, 0.2])
        op = InsertOp(point=buf)
        buf[:] = 0.8
        assert np.allclose(op.point, [0.1, 0.2])

    def test_engine_response_weights_immune_to_caller_mutation(self):
        data = independent(200, 2, seed=18)
        engine = GIREngine(data)
        q = np.array([0.5, 0.6])
        resp = engine.topk(q, 5)
        q[:] = 0.0
        assert np.allclose(resp.weights, [0.5, 0.6])
        with pytest.raises(ValueError):
            resp.weights[0] = 1.0
