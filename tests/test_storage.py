"""Tests for the simulated page store and I/O accounting."""

import pytest

from repro.index.node import Node, node_capacities
from repro.index.storage import DEFAULT_PAGE_SIZE, IOStats, PageStore


class TestCapacities:
    def test_paper_page_size_d4(self):
        leaf, internal = node_capacities(DEFAULT_PAGE_SIZE, 4)
        # leaf entry = 4*8+8 = 40 bytes; internal = 16*4+8 = 72 bytes.
        assert leaf == (4096 - 32) // 40
        assert internal == (4096 - 32) // 72

    def test_capacity_decreases_with_d(self):
        caps = [node_capacities(DEFAULT_PAGE_SIZE, d)[0] for d in range(2, 9)]
        assert caps == sorted(caps, reverse=True)

    def test_floor_of_four(self):
        leaf, internal = node_capacities(256, 50)
        assert leaf >= 4 and internal >= 4

    def test_rejects_bad_d(self):
        with pytest.raises(ValueError):
            node_capacities(4096, 0)


class TestPageStore:
    def test_allocate_write_read(self):
        store = PageStore()
        node = Node(store.allocate(), level=0)
        store.write(node)
        assert store.read(node.node_id) is node
        assert store.stats.page_reads == 1

    def test_unmetered_read_not_counted(self):
        store = PageStore()
        node = Node(store.allocate(), level=0)
        store.write(node)
        store.read_unmetered(node.node_id)
        assert store.stats.page_reads == 0

    def test_leaf_vs_internal_counters(self):
        store = PageStore()
        leaf = Node(store.allocate(), level=0)
        internal = Node(store.allocate(), level=1)
        store.write(leaf)
        store.write(internal)
        store.read(leaf.node_id)
        store.read(internal.node_id)
        assert store.stats.leaf_reads == 1
        assert store.stats.internal_reads == 1

    def test_no_buffer_counts_repeats(self):
        """The paper's setting: every access is a page read."""
        store = PageStore(buffer_pages=0)
        node = Node(store.allocate(), level=0)
        store.write(node)
        store.read(node.node_id)
        store.read(node.node_id)
        assert store.stats.page_reads == 2
        assert store.stats.buffer_hits == 0

    def test_buffer_absorbs_repeats(self):
        store = PageStore(buffer_pages=4)
        node = Node(store.allocate(), level=0)
        store.write(node)
        store.read(node.node_id)
        store.read(node.node_id)
        assert store.stats.page_reads == 1
        assert store.stats.buffer_hits == 1

    def test_buffer_lru_eviction(self):
        store = PageStore(buffer_pages=1)
        a = Node(store.allocate(), level=0)
        b = Node(store.allocate(), level=0)
        store.write(a)
        store.write(b)
        store.read(a.node_id)
        store.read(b.node_id)  # evicts a
        store.read(a.node_id)  # miss again
        assert store.stats.page_reads == 3

    def test_reset_meter(self):
        store = PageStore()
        node = Node(store.allocate(), level=0)
        store.write(node)
        store.read(node.node_id)
        store.reset_meter()
        assert store.stats.page_reads == 0

    def test_io_time_model(self):
        stats = IOStats(page_reads=7, latency_ms_per_page=10.0)
        assert stats.io_time_ms == 70.0

    def test_free(self):
        store = PageStore()
        node = Node(store.allocate(), level=0)
        store.write(node)
        store.free(node.node_id)
        assert node.node_id not in store

    def test_rejects_tiny_page(self):
        with pytest.raises(ValueError):
            PageStore(page_size=64)

    def test_rejects_negative_buffer(self):
        with pytest.raises(ValueError):
            PageStore(buffer_pages=-1)

    def test_snapshot_is_frozen(self):
        store = PageStore()
        node = Node(store.allocate(), level=0)
        store.write(node)
        store.read(node.node_id)
        snap = store.stats.snapshot()
        store.read(node.node_id)
        assert snap.page_reads == 1
        assert store.stats.page_reads == 2
