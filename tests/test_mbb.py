"""Tests for minimum bounding boxes."""

import numpy as np
import pytest

from repro.index.mbb import MBB


class TestConstruction:
    def test_of_point_degenerate(self):
        m = MBB.of_point(np.array([0.3, 0.7]))
        assert m.area() == 0.0
        assert m.contains_point(np.array([0.3, 0.7]))

    def test_of_points(self):
        m = MBB.of_points(np.array([[0.1, 0.9], [0.5, 0.2]]))
        assert np.allclose(m.lo, [0.1, 0.2])
        assert np.allclose(m.hi, [0.5, 0.9])

    def test_of_points_rejects_empty(self):
        with pytest.raises(ValueError):
            MBB.of_points(np.empty((0, 2)))

    def test_rejects_inverted(self):
        with pytest.raises(ValueError, match="lo <= hi"):
            MBB(np.array([0.5, 0.5]), np.array([0.4, 0.6]))

    def test_union_of_rejects_empty(self):
        with pytest.raises(ValueError):
            MBB.union_of([])


class TestGeometry:
    def test_union(self):
        a = MBB(np.array([0.0, 0.0]), np.array([0.5, 0.5]))
        b = MBB(np.array([0.4, 0.2]), np.array([0.9, 0.3]))
        u = a.union(b)
        assert np.allclose(u.lo, [0.0, 0.0])
        assert np.allclose(u.hi, [0.9, 0.5])

    def test_area_margin(self):
        m = MBB(np.array([0.0, 0.0]), np.array([0.5, 0.2]))
        assert m.area() == pytest.approx(0.1)
        assert m.margin() == pytest.approx(0.7)

    def test_overlap_positive(self):
        a = MBB(np.array([0.0, 0.0]), np.array([0.5, 0.5]))
        b = MBB(np.array([0.25, 0.25]), np.array([0.75, 0.75]))
        assert a.overlap(b) == pytest.approx(0.0625)
        assert b.overlap(a) == pytest.approx(0.0625)

    def test_overlap_disjoint(self):
        a = MBB(np.array([0.0, 0.0]), np.array([0.2, 0.2]))
        b = MBB(np.array([0.5, 0.5]), np.array([0.9, 0.9]))
        assert a.overlap(b) == 0.0

    def test_overlap_touching_is_zero(self):
        a = MBB(np.array([0.0, 0.0]), np.array([0.5, 0.5]))
        b = MBB(np.array([0.5, 0.0]), np.array([1.0, 0.5]))
        assert a.overlap(b) == 0.0

    def test_enlargement_point(self):
        m = MBB(np.array([0.0, 0.0]), np.array([0.5, 0.5]))
        assert m.enlargement(np.array([1.0, 0.5])) == pytest.approx(0.25)

    def test_enlargement_contained_is_zero(self):
        m = MBB(np.array([0.0, 0.0]), np.array([0.5, 0.5]))
        assert m.enlargement(np.array([0.25, 0.25])) == 0.0

    def test_center(self):
        m = MBB(np.array([0.0, 0.2]), np.array([0.4, 0.8]))
        assert np.allclose(m.center(), [0.2, 0.5])


class TestScoreBounds:
    def test_maxscore_nonnegative_weights(self):
        m = MBB(np.array([0.1, 0.2]), np.array([0.5, 0.9]))
        w = np.array([1.0, 2.0])
        assert m.maxscore(w) == pytest.approx(0.5 + 1.8)

    def test_minscore(self):
        m = MBB(np.array([0.1, 0.2]), np.array([0.5, 0.9]))
        w = np.array([1.0, 2.0])
        assert m.minscore(w) == pytest.approx(0.1 + 0.4)

    def test_maxscore_negative_weight_uses_lo(self):
        m = MBB(np.array([0.1, 0.2]), np.array([0.5, 0.9]))
        w = np.array([-1.0, 1.0])
        assert m.maxscore(w) == pytest.approx(-0.1 + 0.9)

    def test_maxscore_bounds_every_contained_point(self):
        rng = np.random.default_rng(3)
        m = MBB(np.array([0.2, 0.3, 0.1]), np.array([0.6, 0.8, 0.5]))
        w = rng.random(3)
        pts = m.lo + rng.random((100, 3)) * (m.hi - m.lo)
        assert (pts @ w <= m.maxscore(w) + 1e-12).all()


class TestDominance:
    def test_dominated_by_point_above(self):
        m = MBB(np.array([0.1, 0.1]), np.array([0.4, 0.4]))
        assert m.dominated_by(np.array([0.5, 0.5]))

    def test_not_dominated_by_equal_corner(self):
        m = MBB(np.array([0.1, 0.1]), np.array([0.4, 0.4]))
        assert not m.dominated_by(np.array([0.4, 0.4]))

    def test_not_dominated_partially(self):
        m = MBB(np.array([0.1, 0.1]), np.array([0.4, 0.4]))
        assert not m.dominated_by(np.array([0.9, 0.3]))


class TestEquality:
    def test_eq(self):
        a = MBB(np.array([0.0, 0.0]), np.array([0.5, 0.5]))
        b = MBB(np.array([0.0, 0.0]), np.array([0.5, 0.5]))
        assert a == b

    def test_neq(self):
        a = MBB(np.array([0.0, 0.0]), np.array([0.5, 0.5]))
        b = MBB(np.array([0.0, 0.0]), np.array([0.5, 0.6]))
        assert a != b


class TestIntersects:
    def test_overlapping_boxes(self):
        a = MBB(np.array([0.0, 0.0]), np.array([0.5, 0.5]))
        b = MBB(np.array([0.4, 0.4]), np.array([0.9, 0.9]))
        assert a.intersects(b) and b.intersects(a)

    def test_disjoint_boxes(self):
        a = MBB(np.array([0.0, 0.0]), np.array([0.3, 0.3]))
        b = MBB(np.array([0.5, 0.5]), np.array([0.9, 0.9]))
        assert not a.intersects(b) and not b.intersects(a)

    def test_touching_faces_intersect_despite_zero_overlap(self):
        a = MBB(np.array([0.0, 0.0]), np.array([0.5, 0.5]))
        b = MBB(np.array([0.5, 0.0]), np.array([0.9, 0.5]))
        assert a.overlap(b) == 0.0
        assert a.intersects(b)

    def test_flat_box_inside_window(self):
        """Axis-flat boxes (duplicated coordinate values) have zero volume
        but must still register as intersecting."""
        window = MBB(np.array([0.2, 0.2]), np.array([0.6, 0.6]))
        flat = MBB(np.array([0.25, 0.3]), np.array([0.25, 0.5]))
        assert window.overlap(flat) == 0.0
        assert window.intersects(flat)
        assert flat.intersects(window)

    def test_point_box(self):
        window = MBB(np.array([0.2, 0.2]), np.array([0.6, 0.6]))
        pt = MBB.of_point(np.array([0.4, 0.4]))
        outside = MBB.of_point(np.array([0.7, 0.4]))
        assert window.intersects(pt)
        assert not window.intersects(outside)
