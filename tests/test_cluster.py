"""Tests for the sharded serving tier (`repro.cluster`).

The headline property: a :class:`ShardedGIREngine` — any shard count, any
partitioner, sequential or parallel fan-out, per-request or batched — is
*observably identical* to a single :class:`GIREngine` over the
unpartitioned data: same rid sequences, same scores, on read-only and
mixed read/write workloads alike. On top of that, every cluster-level
cached region must be a sound under-approximation of the true immutable
region: re-querying anywhere inside it reproduces the cached ordered
answer against a ground-truth linear scan of the live records.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import (
    KDSplitPartitioner,
    PARTITIONERS,
    RoundRobinPartitioner,
    ShardedGIREngine,
    make_partitioner,
)
from repro.data.dataset import Dataset
from repro.data.synthetic import independent
from repro.engine import GIREngine, mixed_workload, uniform_workload, zipf_clustered_workload
from repro.index.bulkload import bulk_load_str
from repro.query.linear_scan import scan_topk

N, D, K = 700, 3, 6


@pytest.fixture(scope="module")
def data():
    return independent(N, D, seed=5)


@pytest.fixture(scope="module")
def workloads():
    return {
        "uniform": uniform_workload(D, 25, k=K, rng=101),
        "zipf": zipf_clustered_workload(D, 40, k=K, clusters=4, rng=102),
        "mixed": mixed_workload(
            D, 40, base_n=N, k=K, update_fraction=0.25, rng=103
        ),
    }


@pytest.fixture(scope="module")
def reference_reports(data, workloads):
    """Single-engine reports, one fresh engine per workload."""
    reports = {}
    for name, wl in workloads.items():
        engine = GIREngine(data, bulk_load_str(data), cache_capacity=64)
        reports[name] = engine.run(wl)
    return reports


def assert_equivalent(report, reference):
    assert len(report.responses) == len(reference.responses)
    for r, s in zip(report.responses, reference.responses):
        assert r.ids == s.ids
        np.testing.assert_allclose(r.scores, s.scores, rtol=0, atol=1e-12)
        assert r.k == s.k
    assert len(report.updates) == len(reference.updates)
    for u, v in zip(report.updates, reference.updates):
        assert (u.kind, u.rid) == (v.kind, v.rid)


class TestEquivalence:
    """Sharded answers must be byte-identical to the single engine's."""

    @pytest.mark.parametrize("workload_name", ["uniform", "zipf", "mixed"])
    @pytest.mark.parametrize("shards", [2, 4])
    @pytest.mark.parametrize("parallel", [False, True])
    def test_matches_single_engine(
        self, data, workloads, reference_reports, workload_name, shards, parallel
    ):
        with ShardedGIREngine(
            data, shards=shards, partitioner="round_robin", parallel=parallel
        ) as engine:
            report = engine.run(workloads[workload_name])
        assert_equivalent(report, reference_reports[workload_name])

    @pytest.mark.parametrize("workload_name", ["zipf", "mixed"])
    def test_kd_partitioner_matches(
        self, data, workloads, reference_reports, workload_name
    ):
        with ShardedGIREngine(data, shards=4, partitioner="kd") as engine:
            report = engine.run(workloads[workload_name])
        assert_equivalent(report, reference_reports[workload_name])

    @pytest.mark.parametrize("workload_name", ["zipf", "mixed"])
    def test_batched_serving_matches(
        self, data, workloads, reference_reports, workload_name
    ):
        with ShardedGIREngine(data, shards=2) as engine:
            report = engine.run(workloads[workload_name], batch=True)
        assert_equivalent(report, reference_reports[workload_name])

    def test_cluster_cache_disabled_matches(
        self, data, workloads, reference_reports
    ):
        with ShardedGIREngine(
            data, shards=2, cluster_cache_capacity=0
        ) as engine:
            report = engine.run(workloads["zipf"])
        assert engine.cache is None
        assert engine.fanouts == len(workloads["zipf"])
        assert_equivalent(report, reference_reports["zipf"])


class TestMergedRegions:
    """Every cluster-level cached region under-approximates the true
    immutable region: any vector inside it reproduces the cached answer."""

    @pytest.mark.parametrize("workload_name", ["uniform", "zipf", "mixed"])
    def test_cached_regions_sound(self, data, workloads, workload_name, rng):
        with ShardedGIREngine(data, shards=4, partitioner="kd") as engine:
            engine.run(workloads[workload_name])
            assert len(engine.cache) > 0
            checked = 0
            for _key, gir in engine.cache.items():
                for q in gir.polytope.sample(2, rng):
                    if not gir.polytope.contains(q):
                        continue  # numerical edge of a thin region
                    truth = scan_topk(
                        engine.points, q, gir.topk.k, live=engine.live_mask
                    )
                    assert truth.ids == gir.topk.ids
                    checked += 1
            assert checked > 0

    def test_response_regions_sound(self, data, workloads, rng):
        """Fan-out responses carry the merged region; perturbed weights
        inside it must reproduce the response's exact ordered answer."""
        with ShardedGIREngine(data, shards=2) as engine:
            report = engine.run(workloads["zipf"])
        checked = 0
        for resp in report.responses:
            if resp.source == "cache":
                continue
            for q in resp.region.sample(2, rng):
                if not resp.region.contains(q):
                    continue
                truth = scan_topk(np.asarray(data.points), q, resp.k)
                assert truth.ids == resp.ids[: resp.k]
                checked += 1
        assert checked > 0


class TestAccounting:
    def test_shard_pages_sum_to_cluster_total(self, data, workloads):
        with ShardedGIREngine(data, shards=4) as engine:
            report = engine.run(workloads["zipf"])
        shard_pages = sum(s["page_reads"] for s in report.shard_stats)
        assert shard_pages == report.pages_read_total
        assert len(report.shard_stats) == 4
        assert report.cluster_stats["shards"] == 4
        assert report.cluster_stats["fanouts"] + report.cluster_stats[
            "cluster_full_hits"
        ] == len(workloads["zipf"])

    def test_reused_engine_reports_per_run_deltas(self, data, workloads):
        """A second run() on the same cluster must still satisfy the
        per-shard-sums-to-total invariant (counters are per-run deltas,
        not lifetime meters)."""
        with ShardedGIREngine(data, shards=2) as engine:
            first = engine.run(workloads["zipf"])
            second = engine.run(workloads["uniform"])
        for report in (first, second):
            shard_pages = sum(s["page_reads"] for s in report.shard_stats)
            assert shard_pages == report.pages_read_total
            assert (
                report.cluster_stats["requests_served"]
                == len(report.responses)
            )

    def test_cluster_entries_not_subsumption_evicted(self, data):
        """Merged regions are under-approximations: caching a second
        answer for the same ordered result must not evict the first
        (coverage would silently shrink)."""
        with ShardedGIREngine(data, shards=2) as engine:
            q = np.array([0.55, 0.45, 0.65])
            engine.topk(q, K)
            entries_before = len(engine.cache)
            # A nearby vector outside the (tight) merged region typically
            # produces the same ordered result with a different region;
            # both entries must survive.
            engine.topk(q + 0.08, K)
            assert engine.cache.subsumption_evictions == 0
            assert engine.cache.subsumption_skips == 0
            assert len(engine.cache) >= entries_before

    def test_report_dict_carries_cluster_sections(self, data, workloads):
        with ShardedGIREngine(data, shards=2) as engine:
            payload = engine.run(workloads["uniform"]).to_dict()
        assert "cluster" in payload and "shards" in payload
        assert len(payload["shards"]) == 2
        assert payload["cluster"]["mode"] == "sequential"

    def test_cluster_cache_hit_is_free(self, data):
        with ShardedGIREngine(data, shards=2) as engine:
            q = np.array([0.5, 0.4, 0.7])
            first = engine.topk(q, K)
            again = engine.topk(q, K)
        assert first.source in ("computed", "completed")
        assert again.source == "cache"
        assert again.pages_read == 0
        assert again.ids == first.ids
        assert engine.fanouts == 1


class TestRoutedWrites:
    def test_insert_touches_owning_shard_only(self, data):
        with ShardedGIREngine(data, shards=4) as engine:
            before = [eng.n_live for eng in engine.shards]
            resp = engine.insert(np.array([0.5, 0.5, 0.5]))
            after = [eng.n_live for eng in engine.shards]
        assert resp.kind == "insert" and resp.rid == N
        grown = [a - b for a, b in zip(after, before)]
        assert sorted(grown) == [0, 0, 0, 1]
        shard, local = engine.locate(N)
        assert grown[shard] == 1
        assert engine.shards[shard].table.is_live(local)

    def test_delete_routes_by_global_rid(self, data):
        with ShardedGIREngine(data, shards=4) as engine:
            rid = 123
            shard, local = engine.locate(rid)
            assert engine.shards[shard].table.is_live(local)
            resp = engine.delete(rid)
            assert resp.kind == "delete" and resp.rid == rid
            assert not engine.shards[shard].table.is_live(local)
            assert engine.n_live == N - 1
            with pytest.raises(KeyError):
                engine.delete(rid)  # already tombstoned

    def test_insert_can_evict_cluster_entry(self, data):
        """A record inserted on top of a cached region's top-k must evict
        the affected cluster-level entry (selective invalidation)."""
        with ShardedGIREngine(data, shards=2) as engine:
            q = np.array([0.6, 0.5, 0.7])
            first = engine.topk(q, K)
            assert len(engine.cache) == 1
            resp = engine.insert(np.ones(D))  # dominates everything
            assert resp.evicted >= 1
            assert len(engine.cache) == 0
            again = engine.topk(q, K)
            assert again.ids[0] == N  # the new record tops the list
            assert again.ids[1:] == first.ids[: K - 1]

    def test_failed_backend_insert_rolls_back_allocation(self, data):
        """If the owning shard fails to store a routed insert, the global
        allocation is rolled back to a tombstone and the rid map stays
        aligned — later inserts must not land one rid off."""
        with ShardedGIREngine(data, shards=2) as engine:
            for b in engine.backends:
                b.insert = lambda point: (_ for _ in ()).throw(
                    RuntimeError("worker down")
                )
            with pytest.raises(RuntimeError, match="worker down"):
                engine.insert(np.array([0.5, 0.5, 0.5]))
            for b in engine.backends:
                del b.insert  # restore the class method
            assert engine.locate(N) == (-1, -1)  # allocated, owned by no shard
            assert not engine.table.is_live(N)
            resp = engine.insert(np.array([0.4, 0.4, 0.4]))
            assert resp.rid == N + 1
            shard, local = engine.locate(N + 1)
            assert engine.shards[shard].table.is_live(local)
            assert engine.n_live == N + 1
            engine.delete(N + 1)  # routes correctly despite the gap
            assert engine.n_live == N

    def test_failed_backend_delete_keeps_record_live(self, data):
        """A backend failure during a routed delete must not strand a
        live shard record that the router counts as dead."""
        with ShardedGIREngine(data, shards=2) as engine:
            for b in engine.backends:
                b.delete = lambda rid: (_ for _ in ()).throw(
                    RuntimeError("worker down")
                )
            with pytest.raises(RuntimeError, match="worker down"):
                engine.delete(10)
            for b in engine.backends:
                del b.delete
            assert engine.table.is_live(10)
            assert engine.delete(10).kind == "delete"
            assert not engine.table.is_live(10)

    def test_dirty_insert_failure_fail_stops_the_cluster(self, data, monkeypatch):
        """A write that fails *after* the shard engine mutated (here: the
        invalidation step raising, with the row already stored) must not
        be rolled back — the shard's state no longer matches the router's
        maps, so the cluster fail-stops instead of serving from it."""
        from repro.cluster import ShardWriteError

        with ShardedGIREngine(data, shards=2) as engine:
            def boom(*args, **kwargs):
                raise RuntimeError("LP solver fell over")

            monkeypatch.setattr(
                "repro.engine.engine.apply_insert_invalidation", boom
            )
            with pytest.raises(ShardWriteError, match="insert failed") as info:
                engine.insert(np.array([0.5, 0.5, 0.5]))
            assert info.value.dirty
            monkeypatch.undo()
            for method in (
                lambda: engine.topk(np.array([0.5, 0.5, 0.5]), K),
                lambda: engine.insert(np.array([0.4, 0.4, 0.4])),
                lambda: engine.delete(0),
                lambda: engine.run(uniform_workload(D, 2, k=K, rng=1)),
            ):
                with pytest.raises(RuntimeError, match="cluster is broken"):
                    method()

    def test_shard_emptied_by_deletes_still_merges(self):
        """Deleting every record a shard owns must leave the cluster
        serving correctly: the empty shard is skipped by the fan-out (it
        has nothing to contribute) and the merged answer still matches a
        single engine over the same live set."""
        n, d, k = 60, 3, 5
        small = independent(n, d, seed=21)
        wl = uniform_workload(d, 10, k=k, rng=77)
        with ShardedGIREngine(
            small, shards=3, partitioner="round_robin"
        ) as engine:
            victims = [rid for rid in range(n) if engine.locate(rid)[0] == 1]
            for rid in victims:
                engine.delete(rid)
            assert engine.shards[1].n_live == 0
            report = engine.run(wl)
            # Only the two surviving shards are fanned out to.
            assert engine.stats()["shard_stats"][1]["requests"] == 0

        reference = GIREngine(small, bulk_load_str(small), cache_capacity=64)
        for rid in victims:
            reference.delete(rid)
        ref_report = reference.run(wl)
        assert_equivalent(report, ref_report)

    def test_flush_policy_drops_everything(self, data):
        with ShardedGIREngine(
            data, shards=2, invalidation="flush"
        ) as engine:
            engine.topk(np.array([0.6, 0.5, 0.7]), K)
            assert len(engine.cache) == 1
            engine.insert(np.array([0.01, 0.01, 0.01]))
            assert len(engine.cache) == 0


class TestPartitioners:
    def test_round_robin_balances(self):
        p = RoundRobinPartitioner(4)
        assignment = p.assign_initial(np.zeros((10, 2)))
        counts = np.bincount(assignment, minlength=4)
        assert counts.tolist() == [3, 3, 2, 2]
        # Inserts continue the cycle at rid n.
        assert [p.route(np.zeros(2)) for _ in range(4)] == [2, 3, 0, 1]

    def test_kd_split_balances_and_routes(self, rng):
        g = rng.random((257, 3))
        p = KDSplitPartitioner(4)
        assignment = p.assign_initial(g)
        counts = np.bincount(assignment, minlength=4)
        assert counts.min() >= 257 // 4 - 1 and counts.max() <= 257 // 4 + 2
        # Routing a fresh point lands in exactly one shard, deterministically.
        q = rng.random(3)
        assert p.route(q) == p.route(q)
        assert 0 <= p.route(q) < 4

    def test_kd_route_before_build_fails(self):
        with pytest.raises(RuntimeError):
            KDSplitPartitioner(2).route(np.zeros(2))

    def test_kd_split_on_duplicated_coordinates(self):
        """Median splits on g-coordinates with massive duplication must
        still balance (assignment cuts by sorted *position*, not value)
        and route deterministically — a value-based cut would dump every
        duplicate on one side."""
        base = np.array(
            [[0.5, 0.2], [0.5, 0.8], [0.5, 0.5]], dtype=np.float64
        )
        g = np.tile(base, (40, 1))  # 120 records, 3 distinct rows
        p = KDSplitPartitioner(4)
        assignment = p.assign_initial(g)
        counts = np.bincount(assignment, minlength=4)
        assert counts.min() >= 120 // 4 - 1 and counts.max() <= 120 // 4 + 1
        # Routing duplicated coordinates is deterministic and in range.
        for row in base:
            assert p.route(row) == p.route(row)
            assert 0 <= p.route(row) < 4

    def test_kd_cluster_on_duplicated_coordinates_matches(self):
        """A kd-partitioned cluster over a heavily duplicated dataset
        (axis-flat MBBs, exact score ties everywhere) still merges to the
        single engine's answer — the (score, coord-sum, rid) tie-break
        carries the duplicates."""
        rng = np.random.default_rng(31)
        distinct = rng.random((12, 3))
        pts = distinct[rng.integers(0, 12, size=240)]
        wl = uniform_workload(3, 15, k=7, rng=44)
        data = Dataset(pts)
        reference = GIREngine(data, bulk_load_str(data), cache_capacity=32).run(wl)
        with ShardedGIREngine(data, shards=4, partitioner="kd") as engine:
            report = engine.run(wl)
        assert_equivalent(report, reference)

    def test_registry_and_validation(self):
        assert set(PARTITIONERS) == {"round_robin", "kd"}
        with pytest.raises(ValueError, match="unknown partitioner"):
            make_partitioner("nope", 2)
        with pytest.raises(ValueError, match="configured for"):
            make_partitioner(RoundRobinPartitioner(2), 4)

    def test_more_shards_than_records_rejected(self):
        with pytest.raises(ValueError, match="at least one record per shard"):
            ShardedGIREngine(independent(3, 2, seed=1), shards=8)


class TestMergeLayer:
    """Unit-level checks of the pool-and-rank merge."""

    @staticmethod
    def make_answer(shard, ids, scores, points, region):
        from repro.cluster import ShardAnswer

        pts = np.asarray(points, dtype=np.float64)
        return ShardAnswer(
            shard=shard,
            ids=tuple(ids),
            scores=tuple(scores),
            tie_sums=tuple(float(p.sum()) for p in pts),
            points_g=pts,
            region=region,
            source="computed",
            pages_read=3,
            latency_ms=1.0,
        )

    def test_merge_interleaves_and_adds_frontier(self):
        from repro.cluster import merge_shard_answers
        from repro.geometry.polytope import Polytope

        box = Polytope.from_unit_box(2)
        w = np.array([0.5, 0.5])
        # Shard 0 candidates score 0.9, 0.5; shard 1: 0.7, 0.3.
        a0 = self.make_answer(
            0, [10, 11], [0.9, 0.5], [[0.9, 0.9], [0.5, 0.5]], box
        )
        a1 = self.make_answer(
            1, [20, 21], [0.7, 0.3], [[0.7, 0.7], [0.3, 0.3]], box
        )
        merged = merge_shard_answers([a0, a1], w, 3)
        assert merged.gir.topk.ids == (10, 20, 11)
        assert merged.selected_per_shard == (2, 1)
        # 2 order half-spaces + shard 1's frontier (rid 21) vs the k-th (11).
        kinds = [hs.kind for hs in merged.gir.halfspaces]
        assert kinds == ["order", "order", "separation"]
        frontier = merged.gir.halfspaces[-1]
        assert (frontier.upper, frontier.lower) == (11, 21)
        assert merged.pages_read == 6
        # The merged region contains the query vector and excludes vectors
        # that would reorder the merged list.
        assert merged.gir.polytope.contains(w)
        # Duplicate unit-box rows of the second region are deduplicated:
        # one box (4 rows at d=2) + 3 merge half-spaces, nothing else.
        assert merged.gir._hs_row_offset == 4
        assert merged.gir.polytope.m == 4 + 3

    def test_pool_smaller_than_k_rejected(self):
        from repro.cluster import merge_shard_answers
        from repro.geometry.polytope import Polytope

        box = Polytope.from_unit_box(2)
        a = self.make_answer(0, [1], [0.5], [[0.5, 0.5]], box)
        with pytest.raises(ValueError, match="pooled only"):
            merge_shard_answers([a], np.array([0.5, 0.5]), 2)

    def test_source_derivation(self):
        from dataclasses import replace

        from repro.cluster.merge import _merged_source
        from repro.geometry.polytope import Polytope

        base = self.make_answer(
            0, [1], [0.5], [[0.5, 0.5]], Polytope.from_unit_box(2)
        )

        def fake(src):
            return replace(base, source=src)

        assert _merged_source([fake("cache"), fake("cache")]) == "cache"
        assert _merged_source([fake("cache"), fake("computed")]) == "computed"
        assert _merged_source([fake("cache"), fake("completed")]) == "completed"


class TestClusterBench:
    def test_mini_benchmark_payload(self, tmp_path):
        from repro.bench.cluster_bench import (
            ClusterBenchConfig,
            run_cluster_benchmark,
        )

        config = ClusterBenchConfig(
            n=400,
            d=2,
            k=4,
            queries=12,
            shard_counts=(1, 2),
            page_sleep_ms=0.0,
            cache_capacity=16,
            cluster_cache_capacity=16,
        )
        out = tmp_path / "cluster.json"
        payload = run_cluster_benchmark(config, out)
        assert out.exists()
        assert payload["equivalence"]["all_match"]
        assert payload["equivalence"]["accounting_ok"]
        assert {(r["shard_count"], r["mode"]) for r in payload["runs"]} == {
            (1, "sequential"),
            (1, "thread"),
            (2, "sequential"),
            (2, "thread"),
        }
        # The payload self-describes where it ran and what each run was.
        assert payload["host"]["cpu_count"] >= 1
        assert all(r["backend"] == "inproc" for r in payload["runs"])
        assert all(
            r["cluster"]["backend"] == "inproc" for r in payload["runs"]
        )
        # No 4-shard run in this mini grid => no headline ratio.
        assert payload["parallel_speedup_at_4"] is None
        assert payload["process_speedup_at_4"] is None

    def test_mini_benchmark_process_grid(self, tmp_path):
        """backend='process' adds the process fan-out column (CPU-bound
        regime) and keeps every equivalence flag green."""
        from repro.bench.cluster_bench import (
            ClusterBenchConfig,
            run_cluster_benchmark,
        )

        config = ClusterBenchConfig(
            n=300,
            d=2,
            k=4,
            queries=10,
            shard_counts=(2,),
            backend="process",
            family="ANTI",
            page_sleep_ms=0.0,
            cache_capacity=16,
            cluster_cache_capacity=16,
        )
        payload = run_cluster_benchmark(config, tmp_path / "cluster.json")
        assert payload["equivalence"]["all_match"]
        assert payload["equivalence"]["accounting_ok"]
        modes = {(r["shard_count"], r["mode"]) for r in payload["runs"]}
        assert modes == {(2, "sequential"), (2, "thread"), (2, "process")}
        proc_run = next(r for r in payload["runs"] if r["mode"] == "process")
        assert proc_run["backend"] == "process"
        assert proc_run["cluster"]["backend"] == "process"
        assert payload["config"]["family"] == "ANTI"


class TestClusterValidation:
    def test_bad_weights_rejected(self, data):
        with ShardedGIREngine(data, shards=2) as engine:
            with pytest.raises(ValueError, match="shape"):
                engine.topk(np.array([0.5, 0.5]), K)
            with pytest.raises(ValueError, match="finite"):
                engine.topk(np.array([0.5, np.nan, 0.5]), K)
            with pytest.raises(ValueError, match="positive entry"):
                engine.topk(np.zeros(D), K)
            with pytest.raises(ValueError, match="k must be positive"):
                engine.topk(np.array([0.5, 0.5, 0.5]), 0)
            with pytest.raises(ValueError, match="exceeds live"):
                engine.topk(np.array([0.5, 0.5, 0.5]), N + 1)

    def test_bad_point_rejected(self, data):
        with ShardedGIREngine(data, shards=2) as engine:
            with pytest.raises(ValueError, match="shape"):
                engine.insert(np.array([0.5]))
            with pytest.raises(ValueError, match="finite"):
                engine.insert(np.array([0.5, np.inf, 0.5]))
