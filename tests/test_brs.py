"""Tests for BRS top-k search."""

import numpy as np
import pytest

from repro.data.synthetic import independent
from repro.index.bulkload import bulk_load_str
from repro.query.brs import brs_topk, resume_brs_topk
from repro.query.linear_scan import scan_topk
from repro.scoring import polynomial_scoring
from tests.conftest import random_query


class TestCorrectness:
    @pytest.mark.parametrize("k", [1, 5, 20])
    def test_matches_scan_2d(self, small_ind_2d, rng, k):
        data, tree = small_ind_2d
        for _ in range(5):
            q = random_query(rng, 2)
            run = brs_topk(tree, data.points, q, k)
            ref = scan_topk(data.points, q, k)
            assert run.result.ids == ref.ids
            assert np.allclose(run.result.scores, ref.scores)

    @pytest.mark.parametrize("k", [1, 10, 50])
    def test_matches_scan_4d(self, small_ind_4d, rng, k):
        data, tree = small_ind_4d
        for _ in range(5):
            q = random_query(rng, 4)
            run = brs_topk(tree, data.points, q, k)
            assert run.result.ids == scan_topk(data.points, q, k).ids

    def test_matches_scan_anti(self, small_anti_3d, rng):
        data, tree = small_anti_3d
        for _ in range(5):
            q = random_query(rng, 3)
            run = brs_topk(tree, data.points, q, 10)
            assert run.result.ids == scan_topk(data.points, q, 10).ids

    def test_scores_decreasing(self, small_ind_4d, rng):
        data, tree = small_ind_4d
        run = brs_topk(tree, data.points, random_query(rng, 4), 25)
        scores = list(run.result.scores)
        assert scores == sorted(scores, reverse=True)

    def test_zero_weight_dimension(self, small_ind_2d):
        """Weights may be zero on some axes (ties broken consistently)."""
        data, tree = small_ind_2d
        q = np.array([1.0, 0.0])
        run = brs_topk(tree, data.points, q, 5)
        assert run.result.ids == scan_topk(data.points, q, 5).ids

    def test_monotone_scorer(self, small_ind_4d, rng):
        data, tree = small_ind_4d
        scorer = polynomial_scoring([4, 3, 2, 1])
        q = random_query(rng, 4)
        run = brs_topk(tree, data.points, q, 10, scorer=scorer)
        assert run.result.ids == scan_topk(data.points, q, 10, scorer=scorer).ids

    def test_k_equals_n(self):
        data = independent(30, 2, seed=3)
        tree = bulk_load_str(data)
        q = np.array([0.5, 0.5])
        run = brs_topk(tree, data.points, q, 30)
        assert len(run.result.ids) == 30
        assert run.encountered == {}


class TestValidation:
    def test_rejects_negative_weights(self, small_ind_2d):
        data, tree = small_ind_2d
        with pytest.raises(ValueError, match="non-negative"):
            brs_topk(tree, data.points, np.array([-0.1, 0.5]), 5)

    def test_rejects_k_too_large(self, small_ind_2d):
        data, tree = small_ind_2d
        with pytest.raises(ValueError, match="exceeds"):
            brs_topk(tree, data.points, np.array([0.5, 0.5]), data.n + 1)

    def test_rejects_k_zero(self, small_ind_2d):
        data, tree = small_ind_2d
        with pytest.raises(ValueError, match="positive"):
            brs_topk(tree, data.points, np.array([0.5, 0.5]), 0)

    def test_rejects_wrong_shape(self, small_ind_2d):
        data, tree = small_ind_2d
        with pytest.raises(ValueError, match="shape"):
            brs_topk(tree, data.points, np.array([0.5, 0.5, 0.5]), 5)


class TestRetainedState:
    def test_encountered_excludes_result(self, small_ind_4d, rng):
        data, tree = small_ind_4d
        run = brs_topk(tree, data.points, random_query(rng, 4), 10)
        assert not (set(run.encountered) & set(run.result.ids))

    def test_heap_entries_cover_unseen_records(self, small_ind_2d, rng):
        """Every record is either in R, in T, or under a retained heap MBB."""
        data, tree = small_ind_2d
        q = random_query(rng, 2)
        run = brs_topk(tree, data.points, q, 5)
        covered = set(run.result.ids) | set(run.encountered)
        for rid, p in enumerate(data.points):
            if rid in covered:
                continue
            assert any(e.mbb.contains_point(p) for e in run.heap), rid

    def test_heap_maxscores_below_kth(self, small_ind_4d, rng):
        """Termination condition: retained entries cannot beat the k-th."""
        data, tree = small_ind_4d
        q = random_query(rng, 4)
        run = brs_topk(tree, data.points, q, 10)
        for e in run.heap:
            assert e.maxscore <= run.result.kth_score + 1e-12

    def test_io_optimality_proxy(self, rng):
        """BRS reads no more leaves than records it put in R ∪ T require."""
        data = independent(3000, 2, seed=13)
        tree = bulk_load_str(data)
        tree.store.reset_meter()
        run = brs_topk(tree, data.points, random_query(rng, 2), 10)
        # Every fetched leaf contributed at least one encountered/result rec.
        assert tree.store.stats.leaf_reads <= len(run.encountered) + 10

    def test_unmetered_run_charges_nothing(self, small_ind_2d, rng):
        data, tree = small_ind_2d
        tree.store.reset_meter()
        brs_topk(tree, data.points, random_query(rng, 2), 5, metered=False)
        assert tree.store.stats.page_reads == 0


class TestResume:
    """resume_brs_topk: continuing a finished run to a deeper k."""

    def test_resume_same_weights_matches_scratch(self, small_ind_4d, rng):
        data, tree = small_ind_4d
        for _ in range(5):
            q = random_query(rng, 4)
            shallow = brs_topk(tree, data.points, q, 5, metered=False)
            resumed = resume_brs_topk(tree, data.points, shallow, q, 25, metered=False)
            assert resumed.result.ids == scan_topk(data.points, q, 25).ids
            assert np.allclose(
                resumed.result.scores, scan_topk(data.points, q, 25).scores
            )

    def test_resume_with_shifted_weights(self, small_anti_3d, rng):
        """The resumed search is exact even under a different query vector
        (the serving layer resumes for any vector inside the cached GIR)."""
        data, tree = small_anti_3d
        for _ in range(5):
            q = random_query(rng, 3)
            shallow = brs_topk(tree, data.points, q, 5, metered=False)
            q2 = np.clip(q + rng.normal(0, 0.02, 3), 0.01, 1.0)
            resumed = resume_brs_topk(tree, data.points, shallow, q2, 20, metered=False)
            assert resumed.result.ids == scan_topk(data.points, q2, 20).ids

    def test_resume_reads_fewer_pages_than_scratch(self, small_ind_4d, rng):
        data, tree = small_ind_4d
        q = random_query(rng, 4)
        tree.store.reset_meter()
        shallow = brs_topk(tree, data.points, q, 10)
        tree.store.reset_meter()
        resume_brs_topk(tree, data.points, shallow, q, 30)
        resumed_pages = tree.store.stats.page_reads
        tree.store.reset_meter()
        brs_topk(tree, data.points, q, 30)
        scratch_pages = tree.store.stats.page_reads
        assert resumed_pages < scratch_pages

    def test_resume_leaves_input_run_untouched(self, small_ind_4d, rng):
        data, tree = small_ind_4d
        q = random_query(rng, 4)
        shallow = brs_topk(tree, data.points, q, 5, metered=False)
        heap_before = list(shallow.heap)
        enc_before = dict(shallow.encountered)
        resume_brs_topk(tree, data.points, shallow, q, 25, metered=False)
        assert shallow.heap == heap_before
        assert shallow.encountered.keys() == enc_before.keys()
        # Resumable twice: a second resume gives the same answer.
        again = resume_brs_topk(tree, data.points, shallow, q, 25, metered=False)
        assert again.result.ids == scan_topk(data.points, q, 25).ids

    def test_resume_shallower_k_is_noop_read(self, small_ind_4d, rng):
        data, tree = small_ind_4d
        q = random_query(rng, 4)
        run = brs_topk(tree, data.points, q, 10, metered=False)
        tree.store.reset_meter()
        resumed = resume_brs_topk(tree, data.points, run, q, 10)
        assert tree.store.stats.page_reads == 0
        assert resumed.result.ids == run.result.ids


class TestStaleRuns:
    def test_resume_raises_after_insert(self, rng):
        from repro.query.brs import StaleRunError

        data = independent(500, 2, seed=23)
        tree = bulk_load_str(data)
        q = random_query(rng, 2)
        run = brs_topk(tree, data.points, q, 5)
        assert run.tree_mutations == tree.mutations
        tree.insert(np.array([0.99, 0.99]), data.n)
        points = np.vstack([data.points, [[0.99, 0.99]]])
        with pytest.raises(StaleRunError):
            resume_brs_topk(tree, points, run, q, 10)

    def test_resume_raises_after_delete(self, rng):
        from repro.query.brs import StaleRunError

        data = independent(500, 2, seed=24)
        tree = bulk_load_str(data)
        q = random_query(rng, 2)
        run = brs_topk(tree, data.points, q, 5)
        victim = next(rid for rid in range(data.n) if rid not in run.result.ids)
        assert tree.delete(data.points[victim], victim)
        with pytest.raises(StaleRunError):
            resume_brs_topk(tree, data.points, run, q, 10)

    def test_resume_on_unmutated_tree_matches_scratch(self, small_ind_4d, rng):
        data, tree = small_ind_4d
        q = random_query(rng, 4)
        run = brs_topk(tree, data.points, q, 5)
        q2 = q * (1 + rng.normal(0, 0.01, 4))
        resumed = resume_brs_topk(tree, data.points, run, q2, 20)
        scratch = brs_topk(tree, data.points, q2, 20)
        assert resumed.result.ids == scratch.result.ids

    def test_fresh_search_after_mutation_is_equivalent(self, rng):
        """The dynamic path's fallback: after a mutation, a from-scratch
        search at the deeper k equals ground truth (what resume would have
        had to produce)."""
        data = independent(600, 3, seed=25)
        tree = bulk_load_str(data)
        q = random_query(rng, 3)
        brs_topk(tree, data.points, q, 5)  # original (now stale) run
        new_point = np.array([0.95, 0.9, 0.92])
        tree.insert(new_point, data.n)
        points = np.vstack([data.points, new_point[None, :]])
        run = brs_topk(tree, points, q, 12)
        assert run.result.ids == scan_topk(points, q, 12).ids
