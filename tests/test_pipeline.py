"""Tests for the staged GIR pipeline (retrieve → phase1 → phase2 → assemble)."""

import numpy as np
import pytest

from repro.core.gir import compute_gir
from repro.core.pipeline import (
    ExecutionContext,
    run_pipeline,
    stage_assemble,
    stage_phase1,
    stage_phase2,
    stage_retrieve,
)
from repro.query.brs import brs_topk
from tests.conftest import random_query


class TestExecutionContext:
    def test_create_normalises_inputs(self, small_ind_4d):
        data, tree = small_ind_4d
        ctx = ExecutionContext.create(tree, data, [0.5, 0.5, 0.5, 0.5], 5)
        assert ctx.points.shape == data.points.shape
        assert ctx.weights.dtype == np.float64
        assert ctx.points_g.shape == ctx.points.shape
        assert ctx.method == "fp" and ctx.metered
        assert ctx.d == 4

    def test_create_rejects_unknown_method(self, small_ind_4d):
        data, tree = small_ind_4d
        with pytest.raises(ValueError, match="unknown method"):
            ExecutionContext.create(tree, data, [0.5] * 4, 5, method="xx")

    def test_accepts_raw_array(self, small_ind_4d):
        data, tree = small_ind_4d
        ctx = ExecutionContext.create(tree, data.points, [0.5] * 4, 5)
        assert ctx.points is not None and ctx.points.shape == data.points.shape


class TestStages:
    def test_staged_run_matches_wrapper(self, small_anti_3d, rng):
        """Driving the stages by hand gives the wrapper's exact result."""
        data, tree = small_anti_3d
        q = random_query(rng, 3)
        for method in ("sp", "cp", "fp"):
            ctx = ExecutionContext.create(tree, data, q, 8, method=method)
            run = stage_retrieve(ctx)
            hs_order = stage_phase1(ctx, run)
            phase2 = stage_phase2(ctx, run)
            staged = stage_assemble(ctx, run, hs_order + phase2.halfspaces)

            whole = compute_gir(tree, data, q, 8, method=method)
            assert staged.topk.ids == whole.topk.ids
            assert len(staged.halfspaces) == len(whole.halfspaces)
            assert staged.stats.phase2_candidates == whole.stats.phase2_candidates
            for probe in whole.polytope.sample(5, rng):
                assert staged.contains(probe) == whole.contains(probe)

    def test_retrieve_reuses_existing_run(self, small_anti_3d, rng):
        """An adopted BRS run charges the retrieve stage nothing."""
        data, tree = small_anti_3d
        q = random_query(rng, 3)
        run = brs_topk(tree, data.points, q, 6)
        ctx = ExecutionContext.create(tree, data, q, 6)
        adopted = stage_retrieve(ctx, run)
        assert adopted is run
        assert ctx.stats.io_pages_topk == 0

    def test_stage_costs_accumulate_in_context(self, small_anti_3d, rng):
        data, tree = small_anti_3d
        q = random_query(rng, 3)
        ctx = ExecutionContext.create(tree, data, q, 6)
        gir = run_pipeline(ctx)
        assert gir.stats is ctx.stats
        assert gir.stats.cpu_ms_topk >= 0
        assert gir.stats.io_pages_topk > 0  # fresh BRS touches the tree
        assert gir.stats.io_ms_per_page == tree.store.stats.latency_ms_per_page

    def test_wrapper_signature_unchanged(self, small_anti_3d, rng):
        """compute_gir keeps accepting the pre-refactor keyword arguments."""
        data, tree = small_anti_3d
        q = random_query(rng, 3)
        run = brs_topk(tree, data.points, q, 6, metered=False)
        gir = compute_gir(tree, data, q, 6, method="fp", scorer=None,
                          metered=False, run=run, fp_options=None)
        assert gir.topk.ids == run.result.ids
